// HtapWorkload model semantics: the additive interference model (zero
// coupling isolates the sides, terms are additive over shared objects and
// scale with κ and ρ), the two-entry SLA folding (OLTP mean-latency cap +
// DSS completion-time cap through the standard PerfTargets machinery), the
// combined objective's composition from the two sides, and mix-ratio
// monotonicity — more analytic streams shift throughput toward the
// analytic side and never speed up the transactions.

#include "workload/htap_workload.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "catalog/chbench.h"
#include "catalog/tpcc_schema.h"
#include "common/rng.h"
#include "common/simd_dispatch.h"
#include "dot/sla.h"
#include "exec/executor.h"
#include "storage/standard_catalog.h"

namespace dot {
namespace {

/// A small CH-benCH HTAP instance over the hottest TPC-C objects (every
/// table here is touched by both the transaction mix and some analytic
/// template, so interference rows exist for all of them).
struct SmallHtap {
  Schema schema;
  BoxConfig box = MakeBox2();
  HtapBundle bundle;

  explicit SmallHtap(const HtapConfig& config) {
    Schema full = MakeTpccSchema(30);
    schema = full.Subset({"stock", "pk_stock", "order_line", "pk_order_line",
                          "customer", "pk_customer", "orders", "pk_orders"});
    bundle = MakeChbenchHtapWorkload(&schema, &box, config);
  }

  const HtapWorkload& htap() const { return *bundle.htap; }
};

TEST(HtapInterferenceTest, ZeroCouplingIsolatesTheSides) {
  HtapConfig config;
  config.interference_kappa = 0.0;
  SmallHtap inst(config);
  EXPECT_EQ(inst.htap().num_interference_rows(), 0);
  const std::vector<int> p = UniformPlacement(inst.schema.NumObjects(), 0);
  EXPECT_EQ(inst.htap().OltpInterferenceMs(p), 0.0);
  EXPECT_EQ(inst.htap().DssInterferenceMs(p), 0.0);

  // With κ = 0 the combined estimate is exactly the two inner models'
  // numbers: the mix-weighted mean latency and the analytic sequence time.
  const PerfEstimate est = inst.htap().Estimate(p);
  const PerfEstimate dss_est = inst.bundle.dss->Estimate(p);
  EXPECT_EQ(est.unit_times_ms[kHtapDssEntry], dss_est.elapsed_ms);
  const PerfEstimate oltp_est = inst.bundle.oltp->Estimate(p);
  double mean = 0.0;
  const auto& txns = inst.bundle.oltp->txn_types();
  for (size_t i = 0; i < txns.size(); ++i) {
    mean += txns[i].weight * oltp_est.unit_times_ms[i];
  }
  EXPECT_EQ(est.unit_times_ms[kHtapOltpEntry], mean);
}

TEST(HtapInterferenceTest, OnlySharedObjectsGetInterferenceRows) {
  // The full TPC-C schema has objects the analytic templates never touch
  // (e.g. history, new_order); they must carry no interference term.
  Schema schema = MakeTpccSchema(30);
  BoxConfig box = MakeBox2();
  HtapBundle bundle = MakeChbenchHtapWorkload(&schema, &box, HtapConfig{});
  ASSERT_GT(bundle.htap->num_interference_rows(), 0);
  const int history = schema.FindObject("history");
  ASSERT_GE(history, 0);
  for (int row = 0; row < bundle.htap->num_interference_rows(); ++row) {
    EXPECT_NE(bundle.htap->interference_object(row), history);
  }
  // order_line is the hottest shared object: both the mix and CH-Q1 hit
  // it, so it must be present.
  const int order_line = schema.FindObject("order_line");
  bool found = false;
  for (int row = 0; row < bundle.htap->num_interference_rows(); ++row) {
    found = found || bundle.htap->interference_object(row) == order_line;
  }
  EXPECT_TRUE(found);
}

TEST(HtapInterferenceTest, TermsScaleLinearlyWithCoupling) {
  HtapConfig base_config;
  base_config.interference_kappa = 0.05;
  HtapConfig doubled = base_config;
  doubled.interference_kappa = 0.10;
  SmallHtap base(base_config);
  SmallHtap twice(doubled);
  const std::vector<int> p = UniformPlacement(base.schema.NumObjects(), 1);
  const double base_oltp = base.htap().OltpInterferenceMs(p);
  const double base_dss = base.htap().DssInterferenceMs(p);
  EXPECT_GT(base_oltp, 0.0);
  EXPECT_GT(base_dss, 0.0);
  EXPECT_NEAR(twice.htap().OltpInterferenceMs(p), 2 * base_oltp,
              1e-12 * base_oltp);
  EXPECT_NEAR(twice.htap().DssInterferenceMs(p), 2 * base_dss,
              1e-12 * base_dss);
}

TEST(HtapInterferenceTest, AdditiveOverSharedObjects) {
  SmallHtap inst(HtapConfig{});
  std::vector<int> p = UniformPlacement(inst.schema.NumObjects(), 0);
  // Reference the sum through the same pinned schedule the model uses, so
  // the equality is exact at any row count.
  const int rows = inst.htap().num_interference_rows();
  ASSERT_GT(rows, 0);
  std::vector<double> terms(static_cast<size_t>(rows));
  for (int row = 0; row < rows; ++row) {
    terms[static_cast<size_t>(row)] = inst.htap().interference_oltp_ms(row, 0);
  }
  const double expected = BlockedSum(terms.data(), rows);
  EXPECT_EQ(inst.htap().OltpInterferenceMs(p), expected);

  // Moving one shared object changes exactly its own term.
  const int first_object = inst.htap().interference_object(0);
  p[static_cast<size_t>(first_object)] = 2;
  terms[0] = inst.htap().interference_oltp_ms(0, 2);
  EXPECT_EQ(inst.htap().OltpInterferenceMs(p), BlockedSum(terms.data(), rows));
}

TEST(HtapSlaTest, TargetsFoldOneCapPerSide) {
  SmallHtap inst(HtapConfig{});
  const double rel_sla = 0.5;
  const PerfTargets targets = MakePerfTargets(
      inst.htap(), inst.box, inst.schema.NumObjects(), rel_sla);
  EXPECT_EQ(targets.kind, SlaKind::kPerQueryResponseTime);
  ASSERT_EQ(targets.query_caps_ms.size(), 2u);
  ASSERT_EQ(targets.best_case.unit_times_ms.size(), 2u);
  EXPECT_EQ(targets.query_caps_ms[kHtapOltpEntry],
            targets.best_case.unit_times_ms[kHtapOltpEntry] / rel_sla);
  EXPECT_EQ(targets.query_caps_ms[kHtapDssEntry],
            targets.best_case.unit_times_ms[kHtapDssEntry] / rel_sla);

  // The best case (everything premium) meets its own caps; each side's
  // verdict is enforced independently of the other.
  EXPECT_TRUE(MeetsTargets(targets.best_case, targets));
  PerfEstimate oltp_violator = targets.best_case;
  oltp_violator.unit_times_ms[kHtapOltpEntry] =
      targets.query_caps_ms[kHtapOltpEntry] * 1.01;
  EXPECT_FALSE(MeetsTargets(oltp_violator, targets));
  PerfEstimate dss_violator = targets.best_case;
  dss_violator.unit_times_ms[kHtapDssEntry] =
      targets.query_caps_ms[kHtapDssEntry] * 1.01;
  EXPECT_FALSE(MeetsTargets(dss_violator, targets));
  EXPECT_EQ(Psr(dss_violator, targets), 0.5);
}

TEST(HtapObjectiveTest, CombinedThroughputComposesFromBothSides) {
  SmallHtap inst(HtapConfig{});
  const std::vector<int> p = UniformPlacement(inst.schema.NumObjects(), 1);
  const PerfEstimate est = inst.htap().Estimate(p);
  ASSERT_EQ(est.unit_times_ms.size(), 2u);
  const OltpWorkloadModel::Throughput tp =
      inst.bundle.oltp->ThroughputFromMeanLatency(
          est.unit_times_ms[kHtapOltpEntry]);
  EXPECT_EQ(est.tpmc, tp.tpmc);
  EXPECT_EQ(est.tasks_per_hour,
            tp.tasks_per_hour + inst.htap().AnalyticsTasksPerHour(
                                    est.unit_times_ms[kHtapDssEntry]));
  // The measurement window is the OLTP side's.
  EXPECT_EQ(est.elapsed_ms, inst.bundle.oltp->measurement_period_ms());
}

TEST(HtapMixRatioTest, MoreStreamsShiftThroughputTowardAnalytics) {
  double prev_analytic_share = -1.0;
  double prev_tpmc = -1.0;
  for (double streams : {0.25, 1.0, 4.0, 16.0}) {
    HtapConfig config;
    config.analytics_streams = streams;
    SmallHtap inst(config);
    const std::vector<int> p =
        UniformPlacement(inst.schema.NumObjects(), 2);
    const PerfEstimate est = inst.htap().Estimate(p);
    const double analytic = inst.htap().AnalyticsTasksPerHour(
        est.unit_times_ms[kHtapDssEntry]);
    const double share = analytic / est.tasks_per_hour;
    if (prev_analytic_share >= 0) {
      // ρ multiplies the analytic rate and inflates OLTP interference, so
      // the analytic share strictly grows and tpmC strictly falls.
      EXPECT_GT(share, prev_analytic_share) << "streams=" << streams;
      EXPECT_LT(est.tpmc, prev_tpmc) << "streams=" << streams;
    }
    prev_analytic_share = share;
    prev_tpmc = est.tpmc;
  }
}

TEST(HtapMixRatioTest, AnalyticsRateIsInverselyProportionalToSequenceTime) {
  SmallHtap inst(HtapConfig{});
  const double at_1s = inst.htap().AnalyticsTasksPerHour(1000.0);
  const double at_2s = inst.htap().AnalyticsTasksPerHour(2000.0);
  EXPECT_NEAR(at_1s, 2 * at_2s, 1e-9 * at_1s);
  const double seq_len =
      static_cast<double>(inst.bundle.dss->sequence().size());
  // One-hour sequence time, one stream, unit task weight → exactly
  // seq_len queries/hour.
  HtapConfig one;
  one.analytics_streams = 1.0;
  one.analytics_task_weight = 1.0;
  SmallHtap single(one);
  EXPECT_NEAR(single.htap().AnalyticsTasksPerHour(3600.0 * 1000.0), seq_len,
              1e-9 * seq_len);
}

TEST(HtapFastScorerTest, ScoreMatchesEstimateBitForBit) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    HtapConfig config;
    config.analytics_streams = 0.5 * static_cast<double>(seed);
    SmallHtap inst(config);
    const PerfTargets targets = MakePerfTargets(
        inst.htap(), inst.box, inst.schema.NumObjects(), /*sla=*/0.3);
    const std::unique_ptr<FastScorer> scorer = inst.htap().MakeFastScorer(
        {}, targets.query_caps_ms, targets.min_tpmc, kDefaultSlaTolerance);
    ASSERT_NE(scorer, nullptr);
    Rng rng(seed * 97);
    std::vector<int> p(static_cast<size_t>(inst.schema.NumObjects()), 0);
    for (int round = 0; round < 60; ++round) {
      const size_t o =
          rng.NextBounded(static_cast<uint64_t>(p.size()));
      p[o] = static_cast<int>(rng.NextBounded(
          static_cast<uint64_t>(inst.box.NumClasses())));
      const QuickPerf qp = scorer->Score(p);
      const PerfEstimate est = inst.htap().Estimate(p);
      EXPECT_EQ(qp.elapsed_ms, est.elapsed_ms);
      EXPECT_EQ(qp.tpmc, est.tpmc);
      EXPECT_EQ(qp.tasks_per_hour, est.tasks_per_hour);
      EXPECT_EQ(qp.sla_ok, MeetsTargets(est, targets));
    }
  }
}

TEST(HtapExecutorTest, TestRunRederivesThroughputFromTheFoldedTimes) {
  // A noisy test run jitters the two folded unit times; the derived
  // scalars must come from the HTAP composition (contention kernel +
  // analytic rate), not the DSS sequence convention the executor applies
  // to plain response-time workloads.
  SmallHtap inst(HtapConfig{});
  ExecutorConfig exec_config;
  exec_config.seed = 7;
  Executor executor(inst.bundle.htap.get(), exec_config);
  const std::vector<int> p = UniformPlacement(inst.schema.NumObjects(), 1);
  const PerfEstimate measured = executor.Run(p);
  ASSERT_EQ(measured.unit_times_ms.size(), 2u);
  EXPECT_EQ(measured.elapsed_ms, inst.bundle.oltp->measurement_period_ms());
  const OltpWorkloadModel::Throughput tp =
      inst.bundle.oltp->ThroughputFromMeanLatency(
          measured.unit_times_ms[kHtapOltpEntry]);
  EXPECT_EQ(measured.tpmc, tp.tpmc);
  EXPECT_EQ(measured.tasks_per_hour,
            tp.tasks_per_hour + inst.htap().AnalyticsTasksPerHour(
                                    measured.unit_times_ms[kHtapDssEntry]));
}

TEST(HtapFactoryTest, SubsetSchemasDropTemplatesThatNeedMissingTables) {
  const std::vector<QuerySpec> all = MakeChbenchTemplates();
  Schema full = MakeTpccSchema(30);
  EXPECT_EQ(FilterTemplatesToSchema(all, full).size(), all.size());
  Schema no_item = full.Subset({"customer", "pk_customer", "orders",
                                "pk_orders", "order_line", "pk_order_line"});
  const std::vector<QuerySpec> kept = FilterTemplatesToSchema(all, no_item);
  EXPECT_LT(kept.size(), all.size());
  EXPECT_FALSE(kept.empty());
  for (const QuerySpec& q : kept) {
    for (const RelationAccess& ra : q.relations) {
      EXPECT_GE(no_item.FindObject(ra.table), 0) << q.name;
    }
  }
}

}  // namespace
}  // namespace dot
