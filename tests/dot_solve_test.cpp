// Pins the dot::Solve facade (dot/solve.h) to the engines it fronts: each
// SolveMethod must reproduce a direct call to its engine bit for bit —
// same placement, same TOC, same counters, same infeasibility verdicts.
// The facade routes; it must never re-interpret.

#include "dot/solve.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/tpch_schema.h"
#include "common/rng.h"
#include "dot/exhaustive.h"
#include "dot/optimizer.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/profiler.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

/// Placement, TOC, cost, estimate and search counters must all match; the
/// wall-clock and plan-cache diagnostics are explicitly excluded (they
/// legitimately vary run to run).
void ExpectSameDotResult(const DotResult& direct, const DotResult& facade) {
  ASSERT_EQ(direct.status.ok(), facade.status.ok())
      << direct.status.ToString() << " vs " << facade.status.ToString();
  EXPECT_EQ(direct.placement, facade.placement);
  EXPECT_EQ(direct.toc_cents_per_task, facade.toc_cents_per_task);
  EXPECT_EQ(direct.layout_cost_cents_per_hour,
            facade.layout_cost_cents_per_hour);
  EXPECT_EQ(direct.layouts_evaluated, facade.layouts_evaluated);
  EXPECT_EQ(direct.nodes_expanded, facade.nodes_expanded);
  EXPECT_EQ(direct.nodes_pruned_bound, facade.nodes_pruned_bound);
  EXPECT_EQ(direct.nodes_pruned_infeasible, facade.nodes_pruned_infeasible);
  EXPECT_EQ(direct.estimate.tasks_per_hour, facade.estimate.tasks_per_hour);
  EXPECT_EQ(direct.targets.best_case.tasks_per_hour,
            facade.targets.best_case.tasks_per_hour);
}

/// The §4.4.3 small TPC-H instance: 8 objects, exhaustive-tractable, with
/// profiles so the heuristic path can run too.
class SolveFacadeTest : public ::testing::Test {
 protected:
  SolveFacadeTest()
      : schema_(MakeTpchEsSubsetSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H-ES", &schema_, &box_, MakeTpchSubsetTemplates(),
                  RepeatSequence(11, 3), PlannerConfig{}),
        profiler_(&schema_, &box_),
        profiles_(profiler_.ProfileWorkload(
            workload_, [&](const std::vector<int>& p) {
              return workload_.Estimate(p);
            })) {
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = &workload_;
    problem_.relative_sla = 0.5;
    problem_.profiles = &profiles_;
  }

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
  Profiler profiler_;
  WorkloadProfiles profiles_;
  DotProblem problem_;
};

TEST_F(SolveFacadeTest, ExactMatchesDirectExactSearchBitwise) {
  const DotResult direct =
      ExactSearch(problem_, ExactStrategy::kBranchAndBound);
  SolveSpec spec;
  spec.method = SolveMethod::kExact;
  const SolveResult facade = Solve(problem_, spec);
  ASSERT_TRUE(facade.status.ok()) << facade.status.ToString();
  ExpectSameDotResult(direct, facade.dot);
  EXPECT_EQ(facade.placement, direct.placement);
  EXPECT_EQ(facade.toc_cents_per_task, direct.toc_cents_per_task);
  EXPECT_EQ(facade.provenance.layouts_evaluated, direct.layouts_evaluated);
  EXPECT_EQ(facade.provenance.method, SolveMethod::kExact);
  EXPECT_EQ(facade.provenance.nodes_expanded, direct.nodes_expanded);
  EXPECT_FALSE(facade.has_plan);
  EXPECT_FALSE(facade.has_fleet);
}

TEST_F(SolveFacadeTest, EnumerateMatchesExhaustiveSearchBitwise) {
  const DotResult direct = ExhaustiveSearch(problem_);
  SolveSpec spec;
  spec.method = SolveMethod::kEnumerate;
  const SolveResult facade = Solve(problem_, spec);
  ASSERT_TRUE(facade.status.ok()) << facade.status.ToString();
  ExpectSameDotResult(direct, facade.dot);
}

TEST_F(SolveFacadeTest, HeuristicMatchesDotOptimizerBitwise) {
  const DotResult direct = DotOptimizer(problem_).Optimize();
  SolveSpec spec;
  spec.method = SolveMethod::kDotHeuristic;
  const SolveResult facade = Solve(problem_, spec);
  ExpectSameDotResult(direct, facade.dot);
}

TEST_F(SolveFacadeTest, EnumerateRefusesOversizedSpaces) {
  SolveSpec spec;
  spec.method = SolveMethod::kEnumerate;
  spec.max_layouts = 2;  // 8 objects on >= 2 classes is far beyond this
  const SolveResult facade = Solve(problem_, spec);
  EXPECT_FALSE(facade.status.ok());
}

TEST_F(SolveFacadeTest, WarmStartsCannotChangeTheExactResult) {
  SolveSpec cold;
  cold.method = SolveMethod::kExact;
  const SolveResult reference = Solve(problem_, cold);
  ASSERT_TRUE(reference.status.ok());

  std::vector<std::vector<int>> pool = {
      reference.placement,
      std::vector<int>(static_cast<size_t>(schema_.NumObjects()),
                       box_.MostExpensiveClass()),
      std::vector<int>{0},  // malformed: ignored, not fatal
  };
  SolveSpec warm = cold;
  warm.warm_starts = &pool;
  const SolveResult seeded = Solve(problem_, warm);
  ASSERT_TRUE(seeded.status.ok());
  EXPECT_EQ(seeded.placement, reference.placement);
  EXPECT_EQ(seeded.toc_cents_per_task, reference.toc_cents_per_task);
  // Seeding the incumbent with the known optimum can only prune harder.
  EXPECT_LE(seeded.dot.nodes_expanded, reference.dot.nodes_expanded);
}

TEST_F(SolveFacadeTest, EpochPlanOneEpochZeroMigrationMatchesExact) {
  SolveSpec exact;
  exact.method = SolveMethod::kExact;
  const SolveResult single = Solve(problem_, exact);
  ASSERT_TRUE(single.status.ok());

  // Null schedule + zero migration model: the stateful path degenerates
  // to the single-shot problem and must land on the same layout and TOC.
  SolveSpec epoch;
  epoch.method = SolveMethod::kEpochPlan;
  const SolveResult planned = Solve(problem_, epoch);
  ASSERT_TRUE(planned.status.ok()) << planned.status.ToString();
  ASSERT_TRUE(planned.has_plan);
  EXPECT_EQ(planned.placement, single.placement);
  EXPECT_EQ(planned.toc_cents_per_task, single.toc_cents_per_task);
  EXPECT_EQ(planned.plan.steps.size(), 1u);
  EXPECT_EQ(planned.plan.total_migration_cents, 0.0);
}

TEST_F(SolveFacadeTest, ValidateCatchesSpecProblemMismatches) {
  // A malformed problem comes back as a status, not an abort.
  DotProblem no_workload = problem_;
  no_workload.workload = nullptr;
  SolveSpec spec;
  EXPECT_EQ(spec.Validate(no_workload).code(),
            StatusCode::kInvalidArgument);
  const SolveResult r = Solve(no_workload, spec);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);

  // kFleet without a fleet spec is refused the same way.
  SolveSpec fleet;
  fleet.method = SolveMethod::kFleet;
  EXPECT_EQ(fleet.Validate(problem_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SolveFacadeTest, InfeasibleVerdictPassesThroughUnchanged) {
  PerfTargets impossible = MakePerfTargets(
      workload_, box_, schema_.NumObjects(), problem_.relative_sla);
  for (double& cap : impossible.query_caps_ms) cap = 0.0;
  DotProblem hopeless = problem_;
  hopeless.targets_override = &impossible;

  const DotResult direct =
      ExactSearch(hopeless, ExactStrategy::kBranchAndBound);
  SolveSpec spec;
  spec.method = SolveMethod::kExact;
  const SolveResult facade = Solve(hopeless, spec);
  EXPECT_FALSE(direct.status.ok());
  EXPECT_FALSE(facade.status.ok());
  EXPECT_EQ(direct.status.ToString(), facade.dot.status.ToString());
}

/// Randomized DSS instances (the reprovision-test generator): the facade
/// equivalence must hold across boxes, schemas and thread counts, not
/// just on the fixture instance.
struct RandomInstance {
  Schema schema;
  BoxConfig box;
  std::unique_ptr<DssWorkloadModel> workload;

  RandomInstance(uint64_t seed, int tables) {
    Rng rng(seed);
    box = rng.NextBounded(2) == 0 ? MakeBox1() : MakeBox2();
    std::vector<QuerySpec> templates;
    for (int i = 0; i < tables; ++i) {
      const std::string name = "t" + std::to_string(i);
      schema.AddTable(name, 1e5 * (1 + rng.NextBounded(20)),
                      60 + 20 * rng.NextBounded(6));
      schema.AddIndex(name + "_pk", schema.FindObject(name), 8);
      QuerySpec q;
      q.name = "q" + std::to_string(i);
      RelationAccess ra;
      ra.table = name;
      ra.index_sargable = rng.NextBounded(2) == 0;
      ra.selectivity = ra.index_sargable ? rng.NextUniform(0.0005, 0.01)
                                         : rng.NextUniform(0.2, 1.0);
      q.relations = {ra};
      templates.push_back(std::move(q));
    }
    const int num_templates = static_cast<int>(templates.size());
    workload = std::make_unique<DssWorkloadModel>(
        "rand", &schema, &box, std::move(templates),
        RepeatSequence(num_templates, 2), PlannerConfig{});
  }

  DotProblem Problem() const {
    DotProblem p;
    p.schema = &schema;
    p.box = &box;
    p.workload = workload.get();
    return p;
  }
};

TEST(SolveRandomizedTest, ExactFacadeMatchesDirectAcrossInstancesAndThreads) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7919);
    const int tables = 2 + static_cast<int>(rng.NextBounded(3));
    RandomInstance inst(seed, tables);
    const double sla = rng.NextUniform(0.2, 0.8);
    for (int threads : {1, 4, hw}) {
      DotProblem problem = inst.Problem();
      problem.relative_sla = sla;
      problem.options.num_threads = threads;
      const DotResult direct =
          ExactSearch(problem, ExactStrategy::kBranchAndBound);
      SolveSpec spec;
      const SolveResult facade = Solve(problem, spec);
      ExpectSameDotResult(direct, facade.dot);
    }
  }
}

}  // namespace
}  // namespace dot
