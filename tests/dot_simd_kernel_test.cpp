// The runtime-dispatched summation kernels (common/simd_dispatch.h) carry
// the bit-identity story of the fast scorers: every dispatch level must
// execute the *pinned blocked schedule* exactly, so scalar and AVX2 return
// bit-identical doubles and every optimizer verdict — placements, TOC,
// counters — is the same no matter which level the dispatcher resolved.
// Pinned here: (1) each kernel against an independent spelling of the
// schedule, (2) scalar vs AVX2 bitwise on random inputs, (3) fast == full
// evaluation per level for OLTP / DSS / HTAP / ensemble models on random
// placement walks with bit-identical verdicts across levels, and (4)
// branch-and-bound == enumeration per level at 1 / 4 / hardware threads
// with results and pruning counters bitwise equal across levels.

#include "common/simd_dispatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "catalog/tpcc_schema.h"
#include "catalog/tpch_schema.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "dot/bnb_search.h"
#include "dot/candidate_evaluator.h"
#include "dot/ensemble.h"
#include "dot/optimizer.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/htap_workload.h"
#include "workload/scenario.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

/// Forces a dispatch level for the current scope and restores the previous
/// one on exit (single-threaded test setup only, per the hook's contract).
class ScopedKernelLevel {
 public:
  explicit ScopedKernelLevel(KernelLevel level)
      : prev_(ForceKernelLevelForTest(level)) {}
  ~ScopedKernelLevel() { ForceKernelLevelForTest(prev_); }

 private:
  KernelLevel prev_;
};

std::vector<KernelLevel> SupportedLevels() {
  std::vector<KernelLevel> levels = {KernelLevel::kScalar};
  if (KernelLevelSupported(KernelLevel::kAvx2)) {
    levels.push_back(KernelLevel::kAvx2);
  }
  return levels;
}

std::vector<int> ThreadCounts() {
  return {1, 4,
          std::max(1, static_cast<int>(std::thread::hardware_concurrency()))};
}

/// An independent spelling of the pinned blocked schedule from the
/// simd_dispatch.h contract: sequential below the threshold; otherwise four
/// lanes over the largest multiple of 4, tail folded into lanes 0..r-1 in
/// order, reduced as (acc0 + acc2) + (acc1 + acc3).
double ReferenceSchedule(const std::vector<double>& x) {
  const int n = static_cast<int>(x.size());
  if (n < kBlockedSumThreshold) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += x[static_cast<size_t>(i)];
    return total;
  }
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    for (int j = 0; j < 4; ++j) acc[j] += x[static_cast<size_t>(i + j)];
  }
  for (int i = n4; i < n; ++i) acc[i - n4] += x[static_cast<size_t>(i)];
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

std::vector<double> RandomDoubles(Rng* rng, int n) {
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) v = rng->NextUniform(-1e3, 1e3);
  return x;
}

const int kLengths[] = {0, 1, 2, 3, 5, 7, 8, 9, 12, 15, 16, 31, 64, 257, 1000};

TEST(SimdKernelTest, BlockedSumMatchesReferenceScheduleAtEveryLevel) {
  Rng rng(101);
  for (int n : kLengths) {
    const std::vector<double> x = RandomDoubles(&rng, n);
    const double want = ReferenceSchedule(x);
    for (KernelLevel level : SupportedLevels()) {
      ScopedKernelLevel scoped(level);
      EXPECT_EQ(BlockedSum(x.data(), n), want)
          << "n=" << n << " level=" << KernelLevelName(level);
    }
  }
}

TEST(SimdKernelTest, GatherSumMatchesReferenceScheduleAtEveryLevel) {
  Rng rng(102);
  const std::vector<double> values = RandomDoubles(&rng, 512);
  for (int n : kLengths) {
    std::vector<int> idx(static_cast<size_t>(n));
    std::vector<double> gathered(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      idx[static_cast<size_t>(i)] = static_cast<int>(rng.NextBounded(512));
      gathered[static_cast<size_t>(i)] =
          values[static_cast<size_t>(idx[static_cast<size_t>(i)])];
    }
    const double want = ReferenceSchedule(gathered);
    for (KernelLevel level : SupportedLevels()) {
      ScopedKernelLevel scoped(level);
      EXPECT_EQ(GatherSum(values.data(), idx.data(), n), want)
          << "n=" << n << " level=" << KernelLevelName(level);
    }
  }
}

TEST(SimdKernelTest, PlaneGatherSumMatchesReferenceScheduleAtEveryLevel) {
  Rng rng(103);
  const int num_classes = 4;
  const int num_objects = 40;
  for (int n : kLengths) {
    const std::vector<double> plane = RandomDoubles(&rng, num_classes * n);
    std::vector<int> placement(static_cast<size_t>(num_objects));
    for (int& c : placement) {
      c = static_cast<int>(rng.NextBounded(num_classes));
    }
    std::vector<int> objects(static_cast<size_t>(n));
    std::vector<double> gathered(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      objects[static_cast<size_t>(i)] =
          static_cast<int>(rng.NextBounded(num_objects));
      const int cls =
          placement[static_cast<size_t>(objects[static_cast<size_t>(i)])];
      gathered[static_cast<size_t>(i)] =
          plane[static_cast<size_t>(cls) * static_cast<size_t>(n) +
                static_cast<size_t>(i)];
    }
    const double want = ReferenceSchedule(gathered);
    for (KernelLevel level : SupportedLevels()) {
      ScopedKernelLevel scoped(level);
      EXPECT_EQ(
          PlaneGatherSum(plane.data(), objects.data(), placement.data(), n),
          want)
          << "n=" << n << " level=" << KernelLevelName(level);
    }
  }
}

TEST(SimdKernelTest, ScalarAndAvx2AreBitwiseIdenticalOnRandomInputs) {
  if (!KernelLevelSupported(KernelLevel::kAvx2)) {
    GTEST_SKIP() << "no AVX2 on this machine";
  }
  Rng rng(104);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(2000));
    const std::vector<double> x = RandomDoubles(&rng, n);
    double scalar_sum = 0.0;
    double avx2_sum = 0.0;
    {
      ScopedKernelLevel scoped(KernelLevel::kScalar);
      scalar_sum = BlockedSum(x.data(), n);
    }
    {
      ScopedKernelLevel scoped(KernelLevel::kAvx2);
      avx2_sum = BlockedSum(x.data(), n);
    }
    EXPECT_EQ(scalar_sum, avx2_sum) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Fast == full per dispatch level, randomized placements, all model families.
// ---------------------------------------------------------------------------

struct EvalRecord {
  bool fits = false;
  bool feasible = false;
  double toc = 0.0;
  double cost_cents_per_hour = 0.0;
  double violation_gb = 0.0;
};

/// Runs `rounds` placements of a deterministic mutation walk through one
/// evaluator (eval tables built under the currently forced level), checks
/// fast == full bitwise each round, and returns the fast verdicts so the
/// caller can compare walks across levels.
std::vector<EvalRecord> RunParityWalk(const DotProblem& problem, uint64_t seed,
                                      int rounds) {
  DotOptimizer estimator(problem);
  ThreadPool pool(1);
  CandidateEvaluator evaluator(estimator, &pool);
  const int n = problem.schema->NumObjects();
  const int m = problem.box->NumClasses();
  Rng rng(seed);
  std::vector<int> placement(static_cast<size_t>(n), 0);
  std::vector<EvalRecord> records;
  records.reserve(static_cast<size_t>(rounds));
  for (int round = 0; round < rounds; ++round) {
    if (round % 7 == 0) {
      for (int o = 0; o < n; ++o) {
        placement[static_cast<size_t>(o)] =
            static_cast<int>(rng.NextBounded(static_cast<uint64_t>(m)));
      }
    } else {
      const size_t o = rng.NextBounded(static_cast<uint64_t>(n));
      placement[o] =
          static_cast<int>(rng.NextBounded(static_cast<uint64_t>(m)));
    }
    const Layout layout(problem.schema, problem.box, placement);
    const CandidateEval fast = evaluator.EvaluateQuick(layout);
    const CandidateEval full = evaluator.EvaluateOne(layout);
    const std::string what = std::string("level=") +
                             KernelLevelName(ActiveKernelLevel()) +
                             " round=" + std::to_string(round);
    EXPECT_EQ(fast.fits, full.fits) << what;
    EXPECT_EQ(fast.feasible, full.feasible) << what;
    EXPECT_EQ(fast.toc, full.toc) << what;
    EXPECT_EQ(fast.cost_cents_per_hour, full.cost_cents_per_hour) << what;
    EXPECT_EQ(fast.violation_gb, full.violation_gb) << what;
    records.push_back({fast.fits, fast.feasible, fast.toc,
                       fast.cost_cents_per_hour, fast.violation_gb});
  }
  return records;
}

/// Fast == full at every supported level, and the whole walk's verdicts
/// bitwise identical across levels.
void CheckParityAcrossLevels(const DotProblem& problem, uint64_t seed,
                             int rounds) {
  std::vector<EvalRecord> baseline;
  bool have_baseline = false;
  for (KernelLevel level : SupportedLevels()) {
    ScopedKernelLevel scoped(level);
    const std::vector<EvalRecord> records =
        RunParityWalk(problem, seed, rounds);
    if (!have_baseline) {
      baseline = records;
      have_baseline = true;
      continue;
    }
    ASSERT_EQ(records.size(), baseline.size());
    for (size_t i = 0; i < records.size(); ++i) {
      const std::string what = std::string("cross-level level=") +
                               KernelLevelName(level) +
                               " round=" + std::to_string(i);
      EXPECT_EQ(records[i].fits, baseline[i].fits) << what;
      EXPECT_EQ(records[i].feasible, baseline[i].feasible) << what;
      EXPECT_EQ(records[i].toc, baseline[i].toc) << what;
      EXPECT_EQ(records[i].cost_cents_per_hour,
                baseline[i].cost_cents_per_hour)
          << what;
      EXPECT_EQ(records[i].violation_gb, baseline[i].violation_gb) << what;
    }
  }
}

TEST(KernelParityTest, OltpFastEqualsFullAtEveryLevel) {
  Schema full = MakeTpccSchema(30);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "i_customer", "district", "pk_district"});
  BoxConfig box = MakeBox2();
  auto workload = MakeTpccWorkload(&schema, &box, TpccConfig{});
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = workload.get();
  problem.relative_sla = 0.25;
  CheckParityAcrossLevels(problem, /*seed=*/0x011f, /*rounds=*/80);
}

TEST(KernelParityTest, DssFastEqualsFullAtEveryLevel) {
  Schema schema = MakeTpchEsSubsetSchema(20.0);
  BoxConfig box = MakeBox1();
  DssWorkloadModel workload("TPC-H-ES", &schema, &box,
                            MakeTpchSubsetTemplates(), RepeatSequence(11, 3),
                            PlannerConfig{});
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = &workload;
  problem.relative_sla = 0.5;
  CheckParityAcrossLevels(problem, /*seed=*/0xd55, /*rounds=*/80);
}

TEST(KernelParityTest, HtapFastEqualsFullAtEveryLevel) {
  Schema full = MakeTpccSchema(30);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "orders", "pk_orders"});
  BoxConfig box = MakeBox2();
  HtapBundle bundle = MakeChbenchHtapWorkload(&schema, &box, HtapConfig{});
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = bundle.htap.get();
  problem.relative_sla = 0.25;
  CheckParityAcrossLevels(problem, /*seed=*/0x47a9, /*rounds=*/60);
}

TEST(KernelParityTest, EnsembleFastEqualsFullAtEveryLevel) {
  Schema schema = MakeTpchEsSubsetSchema(20.0);
  BoxConfig box = MakeBox1();
  DssWorkloadModel workload("TPC-H-ES", &schema, &box,
                            MakeTpchSubsetTemplates(), RepeatSequence(11, 3),
                            PlannerConfig{});
  ScenarioNoise noise;
  noise.num_scenarios = 5;
  noise.io_scale_cv = 0.25;
  noise.count_cv = 0.1;
  noise.seed = 11;
  const ScenarioEnsemble ensemble =
      SampleScenarioEnsemble(schema.NumObjects(), noise);
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = &workload;
  problem.relative_sla = 0.5;
  problem.ensemble = &ensemble;
  CheckParityAcrossLevels(problem, /*seed=*/0xe25, /*rounds=*/40);
}

// ---------------------------------------------------------------------------
// Branch-and-bound == enumeration per level, across thread counts.
// ---------------------------------------------------------------------------

void ExpectSearchIdentical(const DotResult& a, const DotResult& b,
                           const std::string& what) {
  ASSERT_EQ(a.status.code(), b.status.code())
      << what << ": " << a.status.ToString() << " vs " << b.status.ToString();
  EXPECT_EQ(a.placement, b.placement) << what;
  EXPECT_EQ(a.toc_cents_per_task, b.toc_cents_per_task) << what;
  EXPECT_EQ(a.layout_cost_cents_per_hour, b.layout_cost_cents_per_hour)
      << what;
  EXPECT_EQ(a.estimate.tasks_per_hour, b.estimate.tasks_per_hour) << what;
  EXPECT_EQ(a.estimate.tpmc, b.estimate.tpmc) << what;
}

void ExpectSameCounters(const DotResult& a, const DotResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.layouts_evaluated, b.layouts_evaluated) << what;
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded) << what;
  EXPECT_EQ(a.nodes_pruned_bound, b.nodes_pruned_bound) << what;
  EXPECT_EQ(a.nodes_pruned_infeasible, b.nodes_pruned_infeasible) << what;
  EXPECT_EQ(a.layouts_pruned, b.layouts_pruned) << what;
}

/// Per supported level: branch-and-bound equals enumeration at every thread
/// count; across levels: the search tree itself (placement, TOC, every
/// pruning counter) is a pure function of the problem, not the kernels.
void CheckBnbAcrossLevelsAndThreads(DotProblem problem,
                                    const std::string& what) {
  bool have_baseline = false;
  DotResult baseline;
  for (KernelLevel level : SupportedLevels()) {
    ScopedKernelLevel scoped(level);
    const std::string tag = what + " level=" + KernelLevelName(level);
    problem.options.num_threads = 1;
    const DotResult es = ExactSearch(problem, ExactStrategy::kEnumerate);
    for (int threads : ThreadCounts()) {
      problem.options.num_threads = threads;
      const DotResult bnb =
          ExactSearch(problem, ExactStrategy::kBranchAndBound);
      const std::string run = tag + " threads=" + std::to_string(threads);
      ExpectSearchIdentical(bnb, es, run);
      if (!have_baseline) {
        baseline = bnb;
        have_baseline = true;
      } else {
        ExpectSearchIdentical(bnb, baseline, run + " (cross-level)");
        ExpectSameCounters(bnb, baseline, run + " (cross-level)");
      }
    }
  }
}

TEST(KernelBnbTest, TpccBnbMatchesEnumerationAtEveryLevelAndThreadCount) {
  Schema full = MakeTpccSchema(30);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "i_customer", "district", "pk_district"});
  BoxConfig box = MakeBox2();
  auto workload = MakeTpccWorkload(&schema, &box, TpccConfig{});
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = workload.get();
  problem.relative_sla = 0.25;
  CheckBnbAcrossLevelsAndThreads(problem, "tpcc");
}

TEST(KernelBnbTest, HtapBnbMatchesEnumerationAtEveryLevelAndThreadCount) {
  Schema full = MakeTpccSchema(30);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "orders", "pk_orders"});
  BoxConfig box = MakeBox2();
  HtapBundle bundle = MakeChbenchHtapWorkload(&schema, &box, HtapConfig{});
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = bundle.htap.get();
  problem.relative_sla = 0.25;
  CheckBnbAcrossLevelsAndThreads(problem, "htap");
}

}  // namespace
}  // namespace dot
