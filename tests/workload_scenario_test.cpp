// Unit tests of the scenario-ensemble sampler (workload/scenario.h):
// structure (scenario 0 is the exact nominal), determinism in the noise
// spec, weight normalization, and the io_scale composition the bit-identity
// contract of robust mode rests on.

#include "workload/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dot {
namespace {

TEST(ScenarioEnsembleTest, SamplerShapeAndNominalScenario) {
  ScenarioNoise noise;
  noise.num_scenarios = 8;
  noise.io_scale_cv = 0.2;
  const ScenarioEnsemble ensemble = SampleScenarioEnsemble(5, noise);
  ASSERT_EQ(ensemble.size(), 8);

  // Scenario 0 is the exact nominal: no model override, no scaling — the
  // point forecast itself, so a K=1 ensemble degenerates to it.
  EXPECT_EQ(ensemble.scenarios[0].model, nullptr);
  EXPECT_TRUE(ensemble.scenarios[0].io_scale.empty());
  EXPECT_EQ(ensemble.scenarios[0].label, "nominal");

  for (int k = 1; k < ensemble.size(); ++k) {
    const Scenario& sc = ensemble.scenarios[static_cast<size_t>(k)];
    ASSERT_EQ(sc.io_scale.size(), 5u) << sc.label;
    for (double s : sc.io_scale) {
      EXPECT_TRUE(std::isfinite(s));
      EXPECT_GT(s, 0.0);  // lognormal factors are strictly positive
    }
    EXPECT_DOUBLE_EQ(sc.weight, 1.0);  // equal-weight sampling
  }
}

TEST(ScenarioEnsembleTest, SamplingIsDeterministicInTheNoiseSpec) {
  ScenarioNoise noise;
  noise.num_scenarios = 6;
  noise.io_scale_cv = 0.3;
  noise.count_cv = 0.1;
  noise.seed = 42;
  const ScenarioEnsemble a = SampleScenarioEnsemble(4, noise);
  const ScenarioEnsemble b = SampleScenarioEnsemble(4, noise);
  ASSERT_EQ(a.size(), b.size());
  for (int k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a.scenarios[static_cast<size_t>(k)].io_scale,
              b.scenarios[static_cast<size_t>(k)].io_scale)
        << "scenario " << k;
  }

  noise.seed = 43;
  const ScenarioEnsemble c = SampleScenarioEnsemble(4, noise);
  EXPECT_NE(a.scenarios[1].io_scale, c.scenarios[1].io_scale)
      << "different seeds should perturb differently";
}

TEST(ScenarioEnsembleTest, CountNoiseAloneScalesUniformly) {
  // count_cv without io_scale_cv: the whole workload runs hotter or
  // colder, so each scenario's factors are constant across objects.
  ScenarioNoise noise;
  noise.num_scenarios = 4;
  noise.io_scale_cv = 0.0;
  noise.count_cv = 0.25;
  const ScenarioEnsemble ensemble = SampleScenarioEnsemble(6, noise);
  for (int k = 1; k < ensemble.size(); ++k) {
    const std::vector<double>& scale =
        ensemble.scenarios[static_cast<size_t>(k)].io_scale;
    ASSERT_EQ(scale.size(), 6u);
    for (double s : scale) EXPECT_DOUBLE_EQ(s, scale[0]);
  }
}

TEST(ScenarioEnsembleTest, NoNoiseLeavesScenariosNominal) {
  ScenarioNoise noise;
  noise.num_scenarios = 3;
  noise.io_scale_cv = 0.0;
  noise.count_cv = 0.0;
  const ScenarioEnsemble ensemble = SampleScenarioEnsemble(4, noise);
  for (const Scenario& sc : ensemble.scenarios) {
    EXPECT_TRUE(sc.io_scale.empty());
    EXPECT_EQ(sc.model, nullptr);
  }
}

TEST(ScenarioEnsembleTest, SingleScenarioEnsembleIsThePointForecast) {
  ScenarioNoise noise;
  noise.num_scenarios = 1;
  noise.io_scale_cv = 0.5;  // irrelevant: scenario 0 is always exact
  const ScenarioEnsemble ensemble = SampleScenarioEnsemble(3, noise);
  ASSERT_EQ(ensemble.size(), 1);
  EXPECT_TRUE(ensemble.scenarios[0].io_scale.empty());
  // K=1 normalizes to exactly 1.0 — no division, no drift.
  EXPECT_EQ(ensemble.NormalizedWeights(), std::vector<double>{1.0});
}

TEST(ScenarioEnsembleTest, WeightNormalization) {
  ScenarioEnsemble ensemble;
  ensemble.scenarios.resize(2);
  ensemble.scenarios[0].weight = 2.0;
  ensemble.scenarios[1].weight = 6.0;
  const std::vector<double> w = ensemble.NormalizedWeights();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.25);
  EXPECT_DOUBLE_EQ(w[1], 0.75);

  ensemble.scenarios[1].weight = 0.0;
  EXPECT_DEATH((void)ensemble.NormalizedWeights(), "weight");
}

TEST(ScenarioEnsembleTest, RejectsDegenerateNoiseSpecs) {
  ScenarioNoise noise;
  noise.num_scenarios = 0;
  EXPECT_DEATH((void)SampleScenarioEnsemble(3, noise), "num_scenarios");
  noise.num_scenarios = kMaxScenarios + 1;
  EXPECT_DEATH((void)SampleScenarioEnsemble(3, noise), "num_scenarios");
  noise.num_scenarios = 2;
  noise.io_scale_cv = -0.1;
  EXPECT_DEATH((void)SampleScenarioEnsemble(3, noise), "");
}

TEST(ComposeIoScaleTest, EmptySidePassesTheOtherThroughUnchanged) {
  const std::vector<double> hint{1.5, 0.5, 2.0};
  // Identity composition returns the values bit for bit — the K=1 and
  // nominal-scenario reproduction contracts depend on this.
  EXPECT_EQ(ComposeIoScale(hint, {}), hint);
  EXPECT_EQ(ComposeIoScale({}, hint), hint);
  EXPECT_TRUE(ComposeIoScale({}, {}).empty());
}

TEST(ComposeIoScaleTest, ComposesElementwise) {
  const std::vector<double> a{2.0, 0.5, 1.0};
  const std::vector<double> b{3.0, 4.0, 0.25};
  const std::vector<double> c = ComposeIoScale(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[0], 6.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 0.25);

  EXPECT_DEATH((void)ComposeIoScale(a, {1.0, 2.0}), "arity");
}

}  // namespace
}  // namespace dot
