// The bump allocator behind the branch-and-bound walkers (common/arena.h):
// alignment and non-null guarantees, O(1) Reset with warm-block retention
// (steady-state reuse must not grow the cumulative counter's per-round
// delta), and the provenance counters — cumulative bytes_allocated across
// Resets, the bytes_peak high-water mark, and the resets count.

#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace dot {
namespace {

bool IsAligned(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(ArenaTest, AllocationsAreAlignedAndWritable) {
  Arena arena;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    for (std::size_t bytes : {1u, 3u, 7u, 100u, 4096u}) {
      void* p = arena.Allocate(bytes, align);
      ASSERT_NE(p, nullptr) << "bytes=" << bytes << " align=" << align;
      EXPECT_TRUE(IsAligned(p, align)) << "bytes=" << bytes;
      std::memset(p, 0xab, bytes);
    }
  }
}

TEST(ArenaTest, ZeroByteAllocationsAreDistinctValidPointers) {
  Arena arena;
  void* a = arena.Allocate(0, 1);
  void* b = arena.Allocate(0, 1);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(/*initial_block_bytes=*/64);  // forces several block chains
  std::vector<unsigned char*> chunks;
  for (int i = 0; i < 200; ++i) {
    unsigned char* p = arena.AllocateArray<unsigned char>(17);
    std::memset(p, i & 0xff, 17);
    chunks.push_back(p);
  }
  for (size_t i = 0; i < chunks.size(); ++i) {
    for (int j = 0; j < 17; ++j) {
      ASSERT_EQ(chunks[i][j], static_cast<unsigned char>(i & 0xff))
          << "chunk " << i << " byte " << j << " was clobbered";
    }
  }
}

TEST(ArenaTest, AllocateArrayReturnsTypedAlignedStorage) {
  Arena arena;
  double* d = arena.AllocateArray<double>(31);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(IsAligned(d, alignof(double)));
  for (int i = 0; i < 31; ++i) d[i] = static_cast<double>(i);
  for (int i = 0; i < 31; ++i) EXPECT_EQ(d[i], static_cast<double>(i));
}

TEST(ArenaTest, ResetReusesTheWarmBlock) {
  Arena arena(/*initial_block_bytes=*/128);
  // Grow past the first block so Reset has a largest block to retain.
  for (int i = 0; i < 64; ++i) arena.Allocate(64, 8);
  arena.Reset();
  void* first = arena.Allocate(64, 8);
  arena.Reset();
  void* again = arena.Allocate(64, 8);
  // Identical request stream after Reset lands on the same warm storage.
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.resets(), 2u);
}

TEST(ArenaTest, BytesAllocatedIsCumulativeAcrossResets) {
  Arena arena;
  arena.Allocate(100, 8);
  const std::uint64_t after_first = arena.bytes_allocated();
  EXPECT_GE(after_first, 100u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), after_first);
  arena.Allocate(50, 8);
  EXPECT_GE(arena.bytes_allocated(), after_first + 50);
}

TEST(ArenaTest, BytesPeakTracksTheLiveHighWaterMark) {
  Arena arena;
  arena.Allocate(1000, 8);
  const std::uint64_t peak = arena.bytes_peak();
  EXPECT_GE(peak, 1000u);
  arena.Reset();
  // A smaller post-Reset episode must not move the high-water mark.
  arena.Allocate(10, 8);
  EXPECT_EQ(arena.bytes_peak(), peak);
  // A larger one must.
  arena.Allocate(5000, 8);
  EXPECT_GE(arena.bytes_peak(), 5010u);
}

}  // namespace
}  // namespace dot
