#include "io/device_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "storage/standard_catalog.h"

namespace dot {
namespace {

DeviceModel MakeTestDevice() {
  std::array<LatencyAnchors, kNumIoTypes> anchors{};
  anchors[0] = {0.072, 0.174};  // SR: degrades under concurrency (HDD-like)
  anchors[1] = {13.32, 8.903};  // RR: improves (elevator scheduling)
  anchors[2] = {0.012, 0.039};
  anchors[3] = {10.15, 8.124};
  return DeviceModel("test-hdd", anchors);
}

TEST(DeviceModelTest, InterpolationHitsBothAnchors) {
  const DeviceModel d = MakeTestDevice();
  for (IoType t : kAllIoTypes) {
    EXPECT_NEAR(d.LatencyMs(t, 1.0), d.anchors(t).at_c1_ms, 1e-12);
    EXPECT_NEAR(d.LatencyMs(t, 300.0), d.anchors(t).at_c300_ms, 1e-9);
  }
}

TEST(DeviceModelTest, InterpolationIsMonotoneBetweenAnchors) {
  const DeviceModel d = MakeTestDevice();
  // SR worsens with concurrency; RR improves. Check strict monotonicity on
  // a grid.
  double prev_sr = d.LatencyMs(IoType::kSeqRead, 1.0);
  double prev_rr = d.LatencyMs(IoType::kRandRead, 1.0);
  for (double c = 2.0; c <= 300.0; c *= 1.7) {
    const double sr = d.LatencyMs(IoType::kSeqRead, c);
    const double rr = d.LatencyMs(IoType::kRandRead, c);
    EXPECT_GT(sr, prev_sr) << "c=" << c;
    EXPECT_LT(rr, prev_rr) << "c=" << c;
    prev_sr = sr;
    prev_rr = rr;
  }
}

TEST(DeviceModelTest, ClampsBeyondCalibrationRange) {
  const DeviceModel d = MakeTestDevice();
  EXPECT_DOUBLE_EQ(d.LatencyMs(IoType::kRandRead, 300.0),
                   d.LatencyMs(IoType::kRandRead, 1000.0));
}

TEST(DeviceModelTest, InterpolationStaysWithinAnchorEnvelope) {
  const DeviceModel d = MakeTestDevice();
  for (IoType t : kAllIoTypes) {
    const double lo = std::min(d.anchors(t).at_c1_ms, d.anchors(t).at_c300_ms);
    const double hi = std::max(d.anchors(t).at_c1_ms, d.anchors(t).at_c300_ms);
    for (double c = 1.0; c <= 300.0; c *= 2.0) {
      const double v = d.LatencyMs(t, c);
      EXPECT_GE(v, lo - 1e-12);
      EXPECT_LE(v, hi + 1e-12);
    }
  }
}

TEST(DeviceModelTest, GeometricInterpolationMidpoint) {
  const DeviceModel d = MakeTestDevice();
  // At c = sqrt(300), the exponent is 0.5: latency = geometric mean.
  const double c_mid = std::sqrt(300.0);
  const LatencyAnchors& a = d.anchors(IoType::kRandRead);
  EXPECT_NEAR(d.LatencyMs(IoType::kRandRead, c_mid),
              std::sqrt(a.at_c1_ms * a.at_c300_ms), 1e-9);
}

TEST(DeviceModelTest, TimeForMsPricesEachType) {
  const DeviceModel d = MakeTestDevice();
  IoVector io;
  io[IoType::kSeqRead] = 100;
  io[IoType::kRandRead] = 2;
  const double expected = 100 * 0.072 + 2 * 13.32;
  EXPECT_NEAR(d.TimeForMs(io, 1.0), expected, 1e-9);
}

TEST(DeviceModelTest, TimeForZeroIoIsZero) {
  const DeviceModel d = MakeTestDevice();
  EXPECT_DOUBLE_EQ(d.TimeForMs(IoVector{}, 1.0), 0.0);
}

TEST(DeviceModelDeathTest, RejectsSubUnitConcurrency) {
  const DeviceModel d = MakeTestDevice();
  EXPECT_DEATH((void)d.LatencyMs(IoType::kSeqRead, 0.5), "concurrency");
}

TEST(DeviceModelDeathTest, RejectsNonPositiveAnchors) {
  std::array<LatencyAnchors, kNumIoTypes> anchors{};
  EXPECT_DEATH(DeviceModel("bad", anchors), "non-positive");
}

TEST(Raid0Test, SingleStripeIsIdentity) {
  const DeviceModel base = MakeTestDevice();
  const DeviceModel raid = MakeRaid0(base, 1, "same");
  for (IoType t : kAllIoTypes) {
    EXPECT_DOUBLE_EQ(raid.anchors(t).at_c1_ms, base.anchors(t).at_c1_ms);
  }
}

TEST(Raid0Test, StripingNeverSlowsAnyPattern) {
  const DeviceModel base = MakeTestDevice();
  const DeviceModel raid = MakeRaid0(base, 2, "raid");
  for (IoType t : kAllIoTypes) {
    EXPECT_LE(raid.anchors(t).at_c1_ms, base.anchors(t).at_c1_ms);
    EXPECT_LE(raid.anchors(t).at_c300_ms, base.anchors(t).at_c300_ms);
  }
}

TEST(Raid0Test, SequentialGainTracksMeasuredPair) {
  // The derived 2-way RAID 0 should land near the measured HDD->HDD RAID 0
  // sequential-read improvement from Table 1 (x1.47).
  const StorageClass hdd = MakeStockClass(StockClass::kHdd);
  const DeviceModel raid = MakeRaid0(hdd.device(), 2, "derived");
  const double gain = hdd.device().anchors(IoType::kSeqRead).at_c1_ms /
                      raid.anchors(IoType::kSeqRead).at_c1_ms;
  EXPECT_GT(gain, 1.3);
  EXPECT_LT(gain, 1.8);
}

TEST(Raid0Test, MoreStripesMoreSequentialSpeedup) {
  const DeviceModel base = MakeTestDevice();
  const DeviceModel r2 = MakeRaid0(base, 2, "r2");
  const DeviceModel r4 = MakeRaid0(base, 4, "r4");
  EXPECT_LT(r4.anchors(IoType::kSeqRead).at_c1_ms,
            r2.anchors(IoType::kSeqRead).at_c1_ms);
}

TEST(Raid0Test, RandomReadGainIsCapped) {
  const DeviceModel base = MakeTestDevice();
  const DeviceModel r8 = MakeRaid0(base, 8, "r8");
  // A single random read still hits one spindle: gain capped at 2x.
  EXPECT_GE(r8.anchors(IoType::kRandRead).at_c1_ms,
            base.anchors(IoType::kRandRead).at_c1_ms / 2.0 - 1e-12);
}

}  // namespace
}  // namespace dot
