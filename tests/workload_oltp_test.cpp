#include "workload/oltp_workload.h"

#include <gtest/gtest.h>

#include "catalog/tpcc_schema.h"
#include "storage/standard_catalog.h"
#include "workload/tpcc_workload.h"
#include "workload/workload.h"

namespace dot {
namespace {

class TpccWorkloadTest : public ::testing::Test {
 protected:
  TpccWorkloadTest()
      : schema_(MakeTpccSchema(300)),
        box_(MakeBox2()),
        workload_(MakeTpccWorkload(&schema_, &box_, TpccConfig{})) {}

  Schema schema_;
  BoxConfig box_;
  std::unique_ptr<OltpWorkloadModel> workload_;
};

TEST_F(TpccWorkloadTest, MixWeightsSumToOne) {
  double total = 0;
  for (const TxnType& t : workload_->txn_types()) total += t.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(workload_->txn_types().size(), 5u);
}

TEST_F(TpccWorkloadTest, NewOrderIsThePrimaryTransaction) {
  const TxnType& primary =
      workload_->txn_types()[workload_->primary_txn_index()];
  EXPECT_EQ(primary.name, "NewOrder");
  EXPECT_NEAR(primary.weight, 0.45, 1e-12);
}

TEST_F(TpccWorkloadTest, RunsAtConcurrency300) {
  EXPECT_DOUBLE_EQ(workload_->concurrency(), 300.0);
  EXPECT_EQ(workload_->sla_kind(), SlaKind::kThroughput);
  EXPECT_TRUE(workload_->PlansArePlacementInvariant());
}

TEST_F(TpccWorkloadTest, AllHssdHasHighestTpmc) {
  const int n = schema_.NumObjects();
  const double hssd = workload_->Estimate(UniformPlacement(n, 2)).tpmc;
  const double lssd_raid = workload_->Estimate(UniformPlacement(n, 1)).tpmc;
  const double hdd = workload_->Estimate(UniformPlacement(n, 0)).tpmc;
  EXPECT_GT(hssd, lssd_raid);
  EXPECT_GT(hssd, hdd);
}

TEST_F(TpccWorkloadTest, WorkloadIsRandomIoDominated) {
  // §4.5.1: "most I/O patterns in the TPC-C workload are random accesses".
  PerfEstimate est =
      workload_->Estimate(UniformPlacement(schema_.NumObjects(), 0));
  IoVector total;
  for (const IoVector& v : est.io_by_object) total += v;
  const double random = total[IoType::kRandRead] + total[IoType::kRandWrite];
  const double sequential =
      total[IoType::kSeqRead] + total[IoType::kSeqWrite];
  EXPECT_GT(random, 10 * sequential);
}

TEST_F(TpccWorkloadTest, StockAndOrderLineAreHottest) {
  PerfEstimate est =
      workload_->Estimate(UniformPlacement(schema_.NumObjects(), 2));
  const double stock_io =
      est.io_by_object[schema_.FindObject("stock")].Total();
  const double item_io = est.io_by_object[schema_.FindObject("item")].Total();
  const double history_io =
      est.io_by_object[schema_.FindObject("history")].Total();
  EXPECT_GT(stock_io, 3 * item_io);
  EXPECT_GT(stock_io, 3 * history_io);
}

TEST_F(TpccWorkloadTest, HistoryIsTheOnlySequentialWriter) {
  PerfEstimate est =
      workload_->Estimate(UniformPlacement(schema_.NumObjects(), 0));
  for (const DbObject& o : schema_.objects()) {
    const double sw = est.io_by_object[o.id][IoType::kSeqWrite];
    if (o.name == "history") {
      EXPECT_GT(sw, 0);
    } else {
      EXPECT_DOUBLE_EQ(sw, 0) << o.name;
    }
  }
}

TEST_F(TpccWorkloadTest, TasksPerHourIsTpmcTimes60) {
  PerfEstimate est =
      workload_->Estimate(UniformPlacement(schema_.NumObjects(), 1));
  EXPECT_NEAR(est.tasks_per_hour, est.tpmc * 60.0, 1e-6);
}

TEST_F(TpccWorkloadTest, ThroughputScalesWithConcurrency) {
  TpccConfig half;
  half.concurrency = 150;
  auto w150 = MakeTpccWorkload(&schema_, &box_, half);
  const auto placement = UniformPlacement(schema_.NumObjects(), 2);
  const double tpmc_300 = workload_->Estimate(placement).tpmc;
  const double tpmc_150 = w150->Estimate(placement).tpmc;
  EXPECT_GT(tpmc_300, tpmc_150);
}

TEST_F(TpccWorkloadTest, IoScaleReducesThroughput) {
  const auto placement = UniformPlacement(schema_.NumObjects(), 2);
  std::vector<double> scale(static_cast<size_t>(schema_.NumObjects()), 3.0);
  const double base = workload_->Estimate(placement).tpmc;
  const double scaled =
      workload_->EstimateWithIoScale(placement, scale).tpmc;
  EXPECT_LT(scaled, base);
}

TEST(OltpWorkloadDeathTest, RejectsBadMix) {
  Schema schema = MakeTpccSchema(1);
  BoxConfig box = MakeBox1();
  TxnType t;
  t.name = "only";
  t.weight = 0.5;  // does not sum to 1
  t.io.assign(static_cast<size_t>(schema.NumObjects()), IoVector{});
  EXPECT_DEATH(OltpWorkloadModel("bad", &schema, &box, {t}, 1, 1000),
               "sum to 1");
}

}  // namespace
}  // namespace dot
