// The parallel candidate-evaluation engine must be invisible in the
// results: Optimize() and ExhaustiveSearch() at any thread count return the
// same placement, TOC, cost, and evaluation count — bit-identical doubles,
// not approximately equal — because candidates are reduced under a total
// order (TOC, then lexicographically lowest placement), never by arrival
// time.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "catalog/tpch_schema.h"
#include "dot/candidate_evaluator.h"
#include "dot/exhaustive.h"
#include "dot/optimizer.h"
#include "dot/provisioner.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/profiler.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

/// Thread counts the ISSUE pins: serial, a fixed fan-out, and whatever the
/// host reports.
std::vector<int> ThreadCounts() {
  return {1, 4,
          std::max(1, static_cast<int>(std::thread::hardware_concurrency()))};
}

void ExpectIdentical(const DotResult& a, const DotResult& b,
                     const char* what) {
  ASSERT_EQ(a.status.code(), b.status.code()) << what;
  EXPECT_EQ(a.placement, b.placement) << what;
  EXPECT_EQ(a.toc_cents_per_task, b.toc_cents_per_task) << what;
  EXPECT_EQ(a.layout_cost_cents_per_hour, b.layout_cost_cents_per_hour)
      << what;
  EXPECT_EQ(a.layouts_evaluated, b.layouts_evaluated) << what;
  EXPECT_EQ(a.estimate.elapsed_ms, b.estimate.elapsed_ms) << what;
  EXPECT_EQ(a.estimate.tasks_per_hour, b.estimate.tasks_per_hour) << what;
}

/// The §4.4.3 TPC-H ablation instance (8 objects, 3 classes): small enough
/// for ES, rich enough that DOT's move walk takes many accept/reject
/// decisions.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ParallelDeterminismTest()
      : schema_(MakeTpchEsSubsetSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H-ES", &schema_, &box_, MakeTpchSubsetTemplates(),
                  RepeatSequence(11, 3), PlannerConfig{}),
        profiler_(&schema_, &box_),
        profiles_(profiler_.ProfileWorkload(
            workload_, [&](const std::vector<int>& p) {
              return workload_.Estimate(p);
            })) {
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = &workload_;
    problem_.relative_sla = 0.5;
    problem_.profiles = &profiles_;
  }

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
  Profiler profiler_;
  WorkloadProfiles profiles_;
  DotProblem problem_;
};

TEST_F(ParallelDeterminismTest, OptimizeIsIdenticalAtEveryThreadCount) {
  DotProblem serial = problem_;
  serial.options.num_threads = 1;
  const DotResult baseline = DotOptimizer(serial).Optimize();
  ASSERT_TRUE(baseline.status.ok()) << baseline.status.ToString();
  for (int threads : ThreadCounts()) {
    DotProblem p = problem_;
    p.options.num_threads = threads;
    DotResult r = DotOptimizer(p).Optimize();
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ExpectIdentical(baseline, r, "Optimize");
  }
}

TEST_F(ParallelDeterminismTest, ExhaustiveIsIdenticalAtEveryThreadCount) {
  DotProblem serial = problem_;
  serial.options.num_threads = 1;
  const DotResult baseline = ExhaustiveSearch(serial);
  ASSERT_TRUE(baseline.status.ok()) << baseline.status.ToString();
  EXPECT_EQ(baseline.layouts_evaluated, 6561);  // 3^8, the full space
  for (int threads : ThreadCounts()) {
    DotProblem p = problem_;
    p.options.num_threads = threads;
    DotResult r = ExhaustiveSearch(p);
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ExpectIdentical(baseline, r, "ExhaustiveSearch");
  }
}

TEST_F(ParallelDeterminismTest, ParallelOptimizeStillWithinPaperBandsOfEs) {
  DotProblem p = problem_;
  p.options.num_threads = 4;
  DotResult dot = DotOptimizer(p).Optimize();
  DotResult es = ExhaustiveSearch(p);
  ASSERT_TRUE(dot.status.ok());
  ASSERT_TRUE(es.status.ok());
  EXPECT_LE(es.toc_cents_per_task, dot.toc_cents_per_task * (1 + 1e-9));
  EXPECT_LT(dot.toc_cents_per_task, es.toc_cents_per_task * 1.30);
}

TEST_F(ParallelDeterminismTest, ProvisioningIsIdenticalAtEveryThreadCount) {
  // Two options over the same instance at different SLAs; the per-option
  // results and the winner must not depend on the outer fan-out.
  auto make_options = [&] {
    std::vector<ProvisioningOption> options;
    for (double sla : {0.5, 0.25}) {
      ProvisioningOption opt;
      opt.name = "sla-" + std::to_string(sla);
      opt.make_problem = [this, sla] {
        DotProblem p = problem_;
        p.relative_sla = sla;
        return p;
      };
      options.push_back(std::move(opt));
    }
    return options;
  };
  const ProvisioningResult baseline = ProvisionOverOptions(make_options(), 1);
  ASSERT_GE(baseline.best_option, 0);
  for (int threads : ThreadCounts()) {
    ProvisioningResult r = ProvisionOverOptions(make_options(), threads);
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    EXPECT_EQ(r.best_option, baseline.best_option);
    EXPECT_EQ(r.best_name, baseline.best_name);
    ASSERT_EQ(r.per_option.size(), baseline.per_option.size());
    for (size_t i = 0; i < r.per_option.size(); ++i) {
      ExpectIdentical(baseline.per_option[i], r.per_option[i], "per_option");
    }
  }
}

TEST_F(ParallelDeterminismTest, ZeroThreadsResolvesToHardwareConcurrency) {
  DotProblem p = problem_;
  p.options.num_threads = 0;  // auto
  DotResult r = DotOptimizer(p).Optimize();
  ASSERT_TRUE(r.status.ok());
  DotProblem serial = problem_;
  serial.options.num_threads = 1;
  ExpectIdentical(DotOptimizer(serial).Optimize(), r, "auto threads");
}

TEST(CandidateOrderTest, TieBreaksOnLexicographicallyLowestPlacement) {
  EXPECT_TRUE(BetterCandidate(1.0, {2, 2}, 2.0, {0, 0}));
  EXPECT_FALSE(BetterCandidate(2.0, {0, 0}, 1.0, {2, 2}));
  EXPECT_TRUE(BetterCandidate(1.0, {0, 1}, 1.0, {0, 2}));
  EXPECT_FALSE(BetterCandidate(1.0, {0, 2}, 1.0, {0, 1}));
  EXPECT_FALSE(BetterCandidate(1.0, {0, 1}, 1.0, {0, 1}));
}

TEST(CandidateOrderTest, DecodeLayoutIndexMatchesTheOdometer) {
  // Digit 0 is least significant: index 5 in radix 3 over 3 objects is
  // placement {2, 1, 0}.
  EXPECT_EQ(DecodeLayoutIndex(0, 3, 3), (std::vector<int>{0, 0, 0}));
  EXPECT_EQ(DecodeLayoutIndex(5, 3, 3), (std::vector<int>{2, 1, 0}));
  EXPECT_EQ(DecodeLayoutIndex(26, 3, 3), (std::vector<int>{2, 2, 2}));
}

}  // namespace
}  // namespace dot
