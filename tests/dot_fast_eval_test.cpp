// The TOC-only fast path (per-object device-time tables, the DSS plan
// cache, allocation-free space/cost sums) must be *exactly* identical to
// the full EstimateToc path — bit-identical doubles, not approximately
// equal — for both workload model families, with and without an io_scale
// hint, including after moves that invalidate cached plans. Anything less
// and the two paths could diverge on an accept/reject decision, silently
// changing search results.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "catalog/tpcc_schema.h"
#include "catalog/tpch_schema.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "dot/candidate_evaluator.h"
#include "dot/exhaustive.h"
#include "dot/optimizer.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/profiler.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

std::vector<int> ThreadCounts() {
  return {1, 4,
          std::max(1, static_cast<int>(std::thread::hardware_concurrency()))};
}

void ExpectEvalIdentical(const CandidateEval& fast, const CandidateEval& full,
                         const std::vector<int>& placement) {
  std::string where = "placement:";
  for (int c : placement) where += " " + std::to_string(c);
  EXPECT_EQ(fast.fits, full.fits) << where;
  EXPECT_EQ(fast.feasible, full.feasible) << where;
  EXPECT_EQ(fast.toc, full.toc) << where;
  EXPECT_EQ(fast.cost_cents_per_hour, full.cost_cents_per_hour) << where;
  EXPECT_EQ(fast.violation_gb, full.violation_gb) << where;
}

void ExpectResultIdentical(const DotResult& fast, const DotResult& full,
                           const char* what) {
  ASSERT_EQ(fast.status.code(), full.status.code()) << what;
  EXPECT_EQ(fast.placement, full.placement) << what;
  EXPECT_EQ(fast.toc_cents_per_task, full.toc_cents_per_task) << what;
  EXPECT_EQ(fast.layout_cost_cents_per_hour, full.layout_cost_cents_per_hour)
      << what;
  EXPECT_EQ(fast.layouts_evaluated, full.layouts_evaluated) << what;
  EXPECT_EQ(fast.estimate.elapsed_ms, full.estimate.elapsed_ms) << what;
  EXPECT_EQ(fast.estimate.tasks_per_hour, full.estimate.tasks_per_hour)
      << what;
  EXPECT_EQ(fast.estimate.tpmc, full.estimate.tpmc) << what;
  ASSERT_EQ(fast.estimate.unit_times_ms.size(),
            full.estimate.unit_times_ms.size())
      << what;
  for (size_t i = 0; i < fast.estimate.unit_times_ms.size(); ++i) {
    EXPECT_EQ(fast.estimate.unit_times_ms[i],
              full.estimate.unit_times_ms[i])
        << what << " unit " << i;
  }
}

/// Compares EvaluateQuick against EvaluateOne on `rounds` random placements
/// drawn from a random walk (single-object mutations, so consecutive
/// placements share most of their signature — the plan cache's hit pattern
/// — while still moving footprint objects, which forces invalidation).
void CheckRandomizedEquivalence(const DotProblem& problem, uint64_t seed,
                                int rounds) {
  DotOptimizer estimator(problem);
  ThreadPool pool(1);
  CandidateEvaluator evaluator(estimator, &pool);

  const int n = problem.schema->NumObjects();
  const int m = problem.box->NumClasses();
  Rng rng(seed);
  std::vector<int> placement(static_cast<size_t>(n), 0);
  for (int round = 0; round < rounds; ++round) {
    if (round % 7 == 0) {
      for (int o = 0; o < n; ++o) {
        placement[static_cast<size_t>(o)] =
            static_cast<int>(rng.NextBounded(static_cast<uint64_t>(m)));
      }
    } else {
      const size_t o = rng.NextBounded(static_cast<uint64_t>(n));
      placement[o] = static_cast<int>(rng.NextBounded(
          static_cast<uint64_t>(m)));
    }
    const Layout layout(problem.schema, problem.box, placement);
    ExpectEvalIdentical(evaluator.EvaluateQuick(layout),
                        evaluator.EvaluateOne(layout), placement);
  }
  // The walk above must have exercised the cache in both directions.
  if (problem.workload->sla_kind() == SlaKind::kPerQueryResponseTime) {
    EXPECT_GT(evaluator.plan_cache_hits(), 0);
    EXPECT_GT(evaluator.plan_cache_misses(), 0);
  }
}

class DssFastEvalTest : public ::testing::Test {
 protected:
  DssFastEvalTest()
      : schema_(MakeTpchEsSubsetSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H-ES", &schema_, &box_, MakeTpchSubsetTemplates(),
                  RepeatSequence(11, 3), PlannerConfig{}),
        profiler_(&schema_, &box_),
        profiles_(profiler_.ProfileWorkload(
            workload_, [&](const std::vector<int>& p) {
              return workload_.Estimate(p);
            })) {
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = &workload_;
    problem_.relative_sla = 0.5;
    problem_.profiles = &profiles_;
  }

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
  Profiler profiler_;
  WorkloadProfiles profiles_;
  DotProblem problem_;
};

TEST_F(DssFastEvalTest, RandomizedPlacementsMatchFullPathExactly) {
  CheckRandomizedEquivalence(problem_, /*seed=*/0x5eed, /*rounds=*/300);
}

TEST_F(DssFastEvalTest, RandomizedPlacementsMatchWithIoScaleHint) {
  DotProblem p = problem_;
  std::vector<double> scale(static_cast<size_t>(schema_.NumObjects()), 1.0);
  for (size_t o = 0; o < scale.size(); ++o) {
    scale[o] = 0.5 + 0.25 * static_cast<double>(o % 5);
  }
  p.io_scale_hint = scale;
  CheckRandomizedEquivalence(p, /*seed=*/0xfeed, /*rounds=*/150);
}

TEST_F(DssFastEvalTest, MovingATouchedObjectInvalidatesTheCachedPlan) {
  DotOptimizer estimator(problem_);
  ThreadPool pool(1);
  CandidateEvaluator evaluator(estimator, &pool);

  std::vector<int> placement =
      UniformPlacement(schema_.NumObjects(), box_.MostExpensiveClass());
  const Layout base(&schema_, &box_, placement);
  ExpectEvalIdentical(evaluator.EvaluateQuick(base),
                      evaluator.EvaluateOne(base), placement);
  const long long misses_before = evaluator.plan_cache_misses();

  // Move lineitem (in the footprint of most subset templates): every
  // template that touches it must re-plan, and the fast verdict must track
  // the full path through the changed plans.
  const int lineitem = schema_.FindObject("lineitem");
  ASSERT_GE(lineitem, 0);
  for (int cls = 0; cls < box_.NumClasses(); ++cls) {
    placement[static_cast<size_t>(lineitem)] = cls;
    const Layout moved(&schema_, &box_, placement);
    ExpectEvalIdentical(evaluator.EvaluateQuick(moved),
                        evaluator.EvaluateOne(moved), placement);
  }
  EXPECT_GT(evaluator.plan_cache_misses(), misses_before);

  // Returning to an already-seen signature must hit, not re-plan.
  const long long misses_after = evaluator.plan_cache_misses();
  placement[static_cast<size_t>(lineitem)] = box_.MostExpensiveClass();
  const Layout back(&schema_, &box_, placement);
  ExpectEvalIdentical(evaluator.EvaluateQuick(back),
                      evaluator.EvaluateOne(back), placement);
  EXPECT_EQ(evaluator.plan_cache_misses(), misses_after);
}

TEST_F(DssFastEvalTest, OptimizeMatchesSlowPathAtEveryThreadCount) {
  // use_fast_eval=false forces every candidate through the full path, so
  // result equality here proves the fast path scored every committed
  // candidate exactly as the full path would have.
  DotProblem slow = problem_;
  slow.options.use_fast_eval = false;
  slow.options.num_threads = 1;
  const DotResult full = DotOptimizer(slow).Optimize();
  ASSERT_TRUE(full.status.ok()) << full.status.ToString();
  for (int threads : ThreadCounts()) {
    DotProblem fast = problem_;
    fast.options.use_fast_eval = true;
    fast.options.num_threads = threads;
    const DotResult r = DotOptimizer(fast).Optimize();
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ExpectResultIdentical(r, full, "Optimize fast vs full");
  }
}

TEST_F(DssFastEvalTest, ExhaustiveMatchesSlowPathAtEveryThreadCount) {
  DotProblem slow = problem_;
  slow.options.use_fast_eval = false;
  slow.options.num_threads = 1;
  const DotResult full = ExhaustiveSearch(slow);
  ASSERT_TRUE(full.status.ok()) << full.status.ToString();
  for (int threads : ThreadCounts()) {
    DotProblem fast = problem_;
    fast.options.use_fast_eval = true;
    fast.options.num_threads = threads;
    const DotResult r = ExhaustiveSearch(fast);
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ExpectResultIdentical(r, full, "ExhaustiveSearch fast vs full");
    // The cursor walk resolves almost every template probe from the cache:
    // each template's signature space is tiny next to the full M^N space.
    EXPECT_GT(r.plan_cache_hits, r.plan_cache_misses);
  }
}

TEST_F(DssFastEvalTest, MismatchedTargetsOverrideFallsBackToFullPath) {
  // A throughput-kind override on a DSS workload is degenerate but legal:
  // every candidate is infeasible (tpmc stays 0). The fast path must step
  // aside (its scorers assume caps of the matching kind), not abort.
  PerfTargets throughput_targets;
  throughput_targets.kind = SlaKind::kThroughput;
  throughput_targets.min_tpmc = 1.0;
  DotProblem p = problem_;
  p.targets_override = &throughput_targets;
  const DotResult r = DotOptimizer(p).Optimize();
  EXPECT_FALSE(r.status.ok());
}

TEST(DssUnusedTemplateTest, TemplatesOutsideTheSequenceAreNeverPlanned) {
  // A template list larger than the run sequence: the fast path must skip
  // the unused tail exactly like the full path does (no planner calls, no
  // footprint resolution) and still agree bit-for-bit.
  Schema schema = MakeTpchEsSubsetSchema(20.0);
  BoxConfig box = MakeBox1();
  std::vector<QuerySpec> templates = MakeTpchSubsetTemplates();
  const size_t num_used = templates.size();
  templates.push_back(templates.front());  // never referenced below
  DssWorkloadModel workload("TPC-H-unused", &schema, &box,
                            std::move(templates),
                            RepeatSequence(static_cast<int>(num_used), 2),
                            PlannerConfig{});
  Profiler profiler(&schema, &box);
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      workload,
      [&](const std::vector<int>& p) { return workload.Estimate(p); });

  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = &workload;
  problem.relative_sla = 0.5;
  problem.profiles = &profiles;
  CheckRandomizedEquivalence(problem, /*seed=*/0x17, /*rounds=*/60);
}

class OltpFastEvalTest : public ::testing::Test {
 protected:
  OltpFastEvalTest()
      : schema_(MakeTpccSchema(300)),
        box_(MakeBox2()),
        workload_(MakeTpccWorkload(&schema_, &box_, TpccConfig{})),
        profiler_(&schema_, &box_),
        profiles_(profiler_.ProfileWorkload(
            *workload_, [&](const std::vector<int>& p) {
              return workload_->Estimate(p);
            })) {
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = workload_.get();
    problem_.relative_sla = 0.25;
    problem_.profiles = &profiles_;
  }

  Schema schema_;
  BoxConfig box_;
  std::unique_ptr<OltpWorkloadModel> workload_;
  Profiler profiler_;
  WorkloadProfiles profiles_;
  DotProblem problem_;
};

TEST_F(OltpFastEvalTest, RandomizedPlacementsMatchFullPathExactly) {
  CheckRandomizedEquivalence(problem_, /*seed=*/0xabcd, /*rounds=*/300);
}

TEST_F(OltpFastEvalTest, RandomizedPlacementsMatchWithIoScaleHint) {
  DotProblem p = problem_;
  std::vector<double> scale(static_cast<size_t>(schema_.NumObjects()), 1.0);
  for (size_t o = 0; o < scale.size(); ++o) {
    scale[o] = 0.75 + 0.5 * static_cast<double>(o % 3);
  }
  p.io_scale_hint = scale;
  CheckRandomizedEquivalence(p, /*seed=*/0xdcba, /*rounds=*/150);
}

TEST_F(OltpFastEvalTest, OptimizeMatchesSlowPathAtEveryThreadCount) {
  DotProblem slow = problem_;
  slow.options.use_fast_eval = false;
  slow.options.num_threads = 1;
  const DotResult full = DotOptimizer(slow).Optimize();
  ASSERT_TRUE(full.status.ok()) << full.status.ToString();
  for (int threads : ThreadCounts()) {
    DotProblem fast = problem_;
    fast.options.use_fast_eval = true;
    fast.options.num_threads = threads;
    const DotResult r = DotOptimizer(fast).Optimize();
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ExpectResultIdentical(r, full, "Optimize fast vs full (OLTP)");
    // OLTP has no plan cache; the counters must stay silent.
    EXPECT_EQ(r.plan_cache_hits, 0);
    EXPECT_EQ(r.plan_cache_misses, 0);
  }
}

}  // namespace
}  // namespace dot
