#include <gtest/gtest.h>

#include "common/str_util.h"
#include "common/table_printer.h"
#include "common/units.h"

namespace dot {
namespace {

TEST(StrUtilTest, FormatSigUsesSignificantDigits) {
  EXPECT_EQ(FormatSig(3.47e-4, 3), "0.000347");
  EXPECT_EQ(FormatSig(1.69e-1, 3), "0.169");
  EXPECT_EQ(FormatSig(12345.678, 4), "1.235e+04");
}

TEST(StrUtilTest, FormatFixed) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatFixed(2.0, 0), "2");
}

TEST(StrUtilTest, JoinHandlesEmptyAndMany) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "|"), "a|b|c");
}

TEST(StrUtilTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrPrintf("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrPrintf("empty"), "empty");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("H-SSD RAID 0", "H-SSD"));
  EXPECT_FALSE(StartsWith("L-SSD", "H-SSD"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRendersLine) {
  TablePrinter t({"c"});
  t.AddRow({"x"});
  t.AddSeparator();
  t.AddRow({"y"});
  const std::string s = t.ToString();
  // header sep + top + bottom + explicit = 4 separator lines
  int count = 0;
  for (size_t pos = 0; (pos = s.find("+---", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 4);
}

TEST(TablePrinterDeathTest, ArityMismatchAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "arity");
}

TEST(UnitsTest, PageMath) {
  EXPECT_DOUBLE_EQ(PagesForGb(1.0), 1e9 / 8192.0);
  EXPECT_NEAR(GbForPages(PagesForGb(13.37)), 13.37, 1e-12);
}

TEST(UnitsTest, AmortizationWindowIs36Months) {
  EXPECT_DOUBLE_EQ(kAmortizationHours, 36.0 * 730.0);
}

TEST(UnitsTest, EnergyPriceMatchesPaper) {
  // $0.07/kWh -> 0.007 cents per watt-hour.
  EXPECT_DOUBLE_EQ(kCentsPerWattHour, 0.007);
}

}  // namespace
}  // namespace dot
