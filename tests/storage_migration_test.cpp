#include "storage/migration.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "catalog/schema.h"
#include "storage/standard_catalog.h"

namespace dot {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() : box_(MakeBox2()) {
    schema_.AddTable("t0", 1e6, 100);
    schema_.AddIndex("t0_pk", 0, 8);
    schema_.AddTable("t1", 5e6, 200);
  }

  Schema schema_;
  BoxConfig box_;
};

TEST_F(MigrationTest, ZeroModelIsZeroAndStayingIsFree) {
  MigrationCostModel model;
  EXPECT_TRUE(model.IsZero());
  model.transfer_price_cents_per_gb = 10.0;
  EXPECT_FALSE(model.IsZero());

  // Staying on the same class costs exactly zero — the admissibility hook.
  EXPECT_EQ(ObjectMigrationCostCents(model, box_, 123.0, 1, 1), 0.0);
  EXPECT_EQ(ObjectMoveHours(box_, 123.0, 2, 2, 1.0), 0.0);

  const auto placement = std::vector<int>{0, 1, 2};
  const MigrationEstimate est =
      EstimateMigration(model, box_, schema_, placement, placement);
  EXPECT_EQ(est.cents, 0.0);
  EXPECT_EQ(est.hours, 0.0);
  EXPECT_EQ(est.objects_moved, 0);
}

TEST_F(MigrationTest, StreamBandwidthIsPositiveAndFollowsTheDeviceModel) {
  for (const StorageClass& cls : box_.classes) {
    const double read = ClassStreamGbPerHour(cls, IoType::kSeqRead, 1.0);
    const double write = ClassStreamGbPerHour(cls, IoType::kSeqWrite, 1.0);
    EXPECT_GT(read, 0.0) << cls.name();
    EXPECT_GT(write, 0.0) << cls.name();
    // GB/hour is (8 KiB / latency) by construction.
    const double unit_gb = 8192.0 / (1024.0 * 1024.0 * 1024.0);
    EXPECT_DOUBLE_EQ(
        read, unit_gb * 3600.0 * 1000.0 /
                  cls.device().LatencyMs(IoType::kSeqRead, 1.0));
  }
}

TEST_F(MigrationTest, MoveWindowIsTheSlowerOfDrainAndFill) {
  const double gb = 64.0;
  const double hours = ObjectMoveHours(box_, gb, 0, 2, 1.0);
  const double read_bw =
      ClassStreamGbPerHour(box_.classes[0], IoType::kSeqRead, 1.0);
  const double write_bw =
      ClassStreamGbPerHour(box_.classes[2], IoType::kSeqWrite, 1.0);
  EXPECT_DOUBLE_EQ(hours, gb / std::min(read_bw, write_bw));
  // Twice the data takes twice the window.
  EXPECT_DOUBLE_EQ(ObjectMoveHours(box_, 2 * gb, 0, 2, 1.0), 2 * hours);
}

TEST_F(MigrationTest, CostCombinesTransferPriceAndPricedWindow) {
  MigrationCostModel model;
  model.transfer_price_cents_per_gb = 5.0;
  model.downtime_price_cents_per_hour = 1000.0;
  const double gb = 10.0;
  const double hours = ObjectMoveHours(box_, gb, 1, 0, 1.0);
  EXPECT_DOUBLE_EQ(ObjectMigrationCostCents(model, box_, gb, 1, 0),
                   5.0 * gb + 1000.0 * hours);

  // Transfer-only pricing scales linearly in the moved volume.
  MigrationCostModel transfer_only;
  transfer_only.transfer_price_cents_per_gb = 7.0;
  EXPECT_DOUBLE_EQ(ObjectMigrationCostCents(transfer_only, box_, 3.0, 0, 2),
                   3.0 * ObjectMigrationCostCents(transfer_only, box_, 1.0,
                                                  0, 2));
}

TEST_F(MigrationTest, LayoutBillSumsExactlyTheMovedObjects) {
  MigrationCostModel model;
  model.transfer_price_cents_per_gb = 2.0;
  model.downtime_price_cents_per_hour = 500.0;

  const std::vector<int> from{0, 0, 1};
  const std::vector<int> to{2, 0, 0};  // t0 moves 0->2, t1 moves 1->0
  const MigrationEstimate est =
      EstimateMigration(model, box_, schema_, from, to);
  EXPECT_EQ(est.objects_moved, 2);
  EXPECT_DOUBLE_EQ(est.gb_moved,
                   schema_.object(0).size_gb + schema_.object(2).size_gb);
  const double expected_cents =
      ObjectMigrationCostCents(model, box_, schema_.object(0).size_gb, 0, 2) +
      ObjectMigrationCostCents(model, box_, schema_.object(2).size_gb, 1, 0);
  EXPECT_DOUBLE_EQ(est.cents, expected_cents);
  EXPECT_GT(est.cents, 0.0);
  EXPECT_GT(est.hours, 0.0);
}

TEST_F(MigrationTest, GateMigratesOnlyWhenTheSavingBeatsTheBill) {
  MigrationCostModel model;
  model.transfer_price_cents_per_gb = 1.0;
  const std::vector<int> from{0, 0, 0};
  const std::vector<int> to{2, 2, 2};

  // A large enough operating advantage over a long enough horizon pays.
  const MigrationVerdict go =
      GateMigration(model, box_, schema_, from, to,
                    /*incumbent_toc=*/10.0, /*candidate_toc=*/1.0,
                    /*horizon_hours=*/1000.0, /*migration_weight=*/1.0);
  EXPECT_TRUE(go.migrate);
  EXPECT_DOUBLE_EQ(go.toc_delta_cents_per_task, 9.0);
  EXPECT_DOUBLE_EQ(go.projected_saving, 9000.0);
  EXPECT_GT(go.weighted_bill, 0.0);

  // Same move, but the horizon is too short to amortize the bill.
  const MigrationVerdict no =
      GateMigration(model, box_, schema_, from, to, 10.0, 1.0,
                    /*horizon_hours=*/1e-9, 1.0);
  EXPECT_FALSE(no.migrate);
}

TEST_F(MigrationTest, GateZeroHorizonNeverMigrates) {
  // horizon 0 = no future to amortize over: even a free move with a huge
  // operating advantage stays put (projected saving is exactly 0, and the
  // gate demands it strictly exceed the bill).
  const MigrationCostModel free_model;
  const std::vector<int> from{0, 0, 0};
  const std::vector<int> to{2, 2, 2};
  const MigrationVerdict verdict = GateMigration(
      free_model, box_, schema_, from, to, /*incumbent_toc=*/100.0,
      /*candidate_toc=*/1.0, /*horizon_hours=*/0.0, /*weight=*/0.0);
  EXPECT_FALSE(verdict.migrate);
  EXPECT_DOUBLE_EQ(verdict.projected_saving, 0.0);
}

TEST_F(MigrationTest, GateNegativeHorizonClampsToZero) {
  // A degenerate (negative) horizon from caller-side clock arithmetic
  // degrades to "don't move" rather than aborting — and in particular must
  // not flip the sign of a negative delta into a phantom saving.
  const MigrationCostModel free_model;
  const std::vector<int> from{0, 0, 0};
  const std::vector<int> to{2, 2, 2};
  const MigrationVerdict verdict = GateMigration(
      free_model, box_, schema_, from, to, /*incumbent_toc=*/1.0,
      /*candidate_toc=*/2.0, /*horizon_hours=*/-24.0, /*weight=*/1.0);
  EXPECT_FALSE(verdict.migrate);
  EXPECT_DOUBLE_EQ(verdict.projected_saving, 0.0);
}

TEST_F(MigrationTest, GateExactlyZeroDeltaNeverMigrates) {
  // A tie in TOC never moves data, even when the bill is exactly zero:
  // there is no saving to pay for the operational risk.
  const MigrationCostModel free_model;
  const std::vector<int> from{0, 0, 0};
  const std::vector<int> to{2, 2, 2};
  const MigrationVerdict verdict =
      GateMigration(free_model, box_, schema_, from, to,
                    /*incumbent_toc=*/5.0, /*candidate_toc=*/5.0,
                    /*horizon_hours=*/1000.0, /*weight=*/1.0);
  EXPECT_DOUBLE_EQ(verdict.toc_delta_cents_per_task, 0.0);
  EXPECT_DOUBLE_EQ(verdict.weighted_bill, 0.0);
  EXPECT_FALSE(verdict.migrate);
}

TEST_F(MigrationTest, GateZeroBillStillDemandsStrictSaving) {
  const MigrationCostModel free_model;
  const std::vector<int> from{0, 0, 0};
  const std::vector<int> to{2, 2, 2};
  // Any strictly positive saving clears a zero bill...
  EXPECT_TRUE(GateMigration(free_model, box_, schema_, from, to, 5.0 + 1e-6,
                            5.0, 1.0, 1.0)
                  .migrate);
  // ...but a negative delta (candidate worse) never does.
  EXPECT_FALSE(
      GateMigration(free_model, box_, schema_, from, to, 5.0, 6.0, 1.0, 1.0)
          .migrate);
}

TEST_F(MigrationTest, GateIdentityMoveIsFreeAndStaysPut) {
  // from == to: the bill is exactly zero and nothing migrates regardless
  // of the TOC delta (the candidate IS the incumbent).
  MigrationCostModel model;
  model.transfer_price_cents_per_gb = 3.0;
  const std::vector<int> layout{1, 0, 2};
  const MigrationVerdict verdict = GateMigration(
      model, box_, schema_, layout, layout, 10.0, 10.0, 1000.0, 1.0);
  EXPECT_EQ(verdict.bill.objects_moved, 0);
  EXPECT_DOUBLE_EQ(verdict.bill.cents, 0.0);
  EXPECT_FALSE(verdict.migrate);
}

TEST_F(MigrationTest, GateAbortsOnPlacementArityMismatch) {
  // An endpoint that does not place every schema object is a programmer
  // error, not untrusted input: the gate aborts instead of guessing.
  const MigrationCostModel model;
  const std::vector<int> ok{0, 0, 0};
  const std::vector<int> short_placement{0, 0};
  EXPECT_DEATH(GateMigration(model, box_, schema_, short_placement, ok, 2.0,
                             1.0, 24.0, 1.0),
               "every schema object");
}

}  // namespace
}  // namespace dot
