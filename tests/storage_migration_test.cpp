#include "storage/migration.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "catalog/schema.h"
#include "storage/standard_catalog.h"

namespace dot {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() : box_(MakeBox2()) {
    schema_.AddTable("t0", 1e6, 100);
    schema_.AddIndex("t0_pk", 0, 8);
    schema_.AddTable("t1", 5e6, 200);
  }

  Schema schema_;
  BoxConfig box_;
};

TEST_F(MigrationTest, ZeroModelIsZeroAndStayingIsFree) {
  MigrationCostModel model;
  EXPECT_TRUE(model.IsZero());
  model.transfer_price_cents_per_gb = 10.0;
  EXPECT_FALSE(model.IsZero());

  // Staying on the same class costs exactly zero — the admissibility hook.
  EXPECT_EQ(ObjectMigrationCostCents(model, box_, 123.0, 1, 1), 0.0);
  EXPECT_EQ(ObjectMoveHours(box_, 123.0, 2, 2, 1.0), 0.0);

  const auto placement = std::vector<int>{0, 1, 2};
  const MigrationEstimate est =
      EstimateMigration(model, box_, schema_, placement, placement);
  EXPECT_EQ(est.cents, 0.0);
  EXPECT_EQ(est.hours, 0.0);
  EXPECT_EQ(est.objects_moved, 0);
}

TEST_F(MigrationTest, StreamBandwidthIsPositiveAndFollowsTheDeviceModel) {
  for (const StorageClass& cls : box_.classes) {
    const double read = ClassStreamGbPerHour(cls, IoType::kSeqRead, 1.0);
    const double write = ClassStreamGbPerHour(cls, IoType::kSeqWrite, 1.0);
    EXPECT_GT(read, 0.0) << cls.name();
    EXPECT_GT(write, 0.0) << cls.name();
    // GB/hour is (8 KiB / latency) by construction.
    const double unit_gb = 8192.0 / (1024.0 * 1024.0 * 1024.0);
    EXPECT_DOUBLE_EQ(
        read, unit_gb * 3600.0 * 1000.0 /
                  cls.device().LatencyMs(IoType::kSeqRead, 1.0));
  }
}

TEST_F(MigrationTest, MoveWindowIsTheSlowerOfDrainAndFill) {
  const double gb = 64.0;
  const double hours = ObjectMoveHours(box_, gb, 0, 2, 1.0);
  const double read_bw =
      ClassStreamGbPerHour(box_.classes[0], IoType::kSeqRead, 1.0);
  const double write_bw =
      ClassStreamGbPerHour(box_.classes[2], IoType::kSeqWrite, 1.0);
  EXPECT_DOUBLE_EQ(hours, gb / std::min(read_bw, write_bw));
  // Twice the data takes twice the window.
  EXPECT_DOUBLE_EQ(ObjectMoveHours(box_, 2 * gb, 0, 2, 1.0), 2 * hours);
}

TEST_F(MigrationTest, CostCombinesTransferPriceAndPricedWindow) {
  MigrationCostModel model;
  model.transfer_price_cents_per_gb = 5.0;
  model.downtime_price_cents_per_hour = 1000.0;
  const double gb = 10.0;
  const double hours = ObjectMoveHours(box_, gb, 1, 0, 1.0);
  EXPECT_DOUBLE_EQ(ObjectMigrationCostCents(model, box_, gb, 1, 0),
                   5.0 * gb + 1000.0 * hours);

  // Transfer-only pricing scales linearly in the moved volume.
  MigrationCostModel transfer_only;
  transfer_only.transfer_price_cents_per_gb = 7.0;
  EXPECT_DOUBLE_EQ(ObjectMigrationCostCents(transfer_only, box_, 3.0, 0, 2),
                   3.0 * ObjectMigrationCostCents(transfer_only, box_, 1.0,
                                                  0, 2));
}

TEST_F(MigrationTest, LayoutBillSumsExactlyTheMovedObjects) {
  MigrationCostModel model;
  model.transfer_price_cents_per_gb = 2.0;
  model.downtime_price_cents_per_hour = 500.0;

  const std::vector<int> from{0, 0, 1};
  const std::vector<int> to{2, 0, 0};  // t0 moves 0->2, t1 moves 1->0
  const MigrationEstimate est =
      EstimateMigration(model, box_, schema_, from, to);
  EXPECT_EQ(est.objects_moved, 2);
  EXPECT_DOUBLE_EQ(est.gb_moved,
                   schema_.object(0).size_gb + schema_.object(2).size_gb);
  const double expected_cents =
      ObjectMigrationCostCents(model, box_, schema_.object(0).size_gb, 0, 2) +
      ObjectMigrationCostCents(model, box_, schema_.object(2).size_gb, 1, 0);
  EXPECT_DOUBLE_EQ(est.cents, expected_cents);
  EXPECT_GT(est.cents, 0.0);
  EXPECT_GT(est.hours, 0.0);
}

}  // namespace
}  // namespace dot
