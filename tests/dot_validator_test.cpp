#include "dot/validator.h"

#include <gtest/gtest.h>

#include "catalog/tpch_schema.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/profiler.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest()
      : schema_(MakeTpchEsSubsetSchema(20.0)),
        box_(MakeBox1()),
        workload_("w", &schema_, &box_, MakeTpchSubsetTemplates(),
                  RepeatSequence(11, 3), PlannerConfig{}),
        profiler_(&schema_, &box_),
        profiles_(profiler_.ProfileWorkload(
            workload_, [&](const std::vector<int>& p) {
              return workload_.Estimate(p);
            })) {
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = &workload_;
    problem_.relative_sla = 0.5;
    problem_.profiles = &profiles_;
  }

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
  Profiler profiler_;
  WorkloadProfiles profiles_;
  DotProblem problem_;
};

TEST_F(ValidatorTest, AccurateEstimatesValidateInOneRound) {
  PipelineConfig cfg;
  cfg.exec.noise_cv = 0.0;
  PipelineResult r = RunDotPipeline(problem_, cfg);
  EXPECT_TRUE(r.validated);
  EXPECT_EQ(r.rounds.size(), 1u);
  EXPECT_TRUE(r.rounds[0].passed);
  EXPECT_DOUBLE_EQ(r.rounds[0].measured_psr, 1.0);
}

TEST_F(ValidatorTest, MildNoisePassesWithTolerance) {
  PipelineConfig cfg;
  cfg.exec.noise_cv = 0.01;
  cfg.exec.seed = 5;
  cfg.validation_tolerance = 0.10;
  PipelineResult r = RunDotPipeline(problem_, cfg);
  EXPECT_TRUE(r.validated);
}

TEST_F(ValidatorTest, InjectedMisestimateTriggersRefinement) {
  // The optimizer believes lineitem is 1x; in reality every lineitem I/O
  // happens 6x. The first recommendation over-demotes lineitem; the test
  // run misses its caps; refinement feeds the measured stats back.
  PipelineConfig cfg;
  cfg.exec.noise_cv = 0.0;
  cfg.exec.io_scale.assign(static_cast<size_t>(schema_.NumObjects()), 1.0);
  cfg.exec.io_scale[static_cast<size_t>(schema_.FindObject("lineitem"))] =
      6.0;
  cfg.max_rounds = 3;
  PipelineResult r = RunDotPipeline(problem_, cfg);
  ASSERT_GE(r.rounds.size(), 1u);
  // Refinement must have been exercised (round 1 failed) and eventually
  // validated (the corrected model is exact by construction).
  EXPECT_GT(r.rounds.size(), 1u);
  EXPECT_FALSE(r.rounds[0].passed);
  EXPECT_TRUE(r.validated);
}

TEST_F(ValidatorTest, RefinementImprovesMeasuredPsr) {
  PipelineConfig cfg;
  cfg.exec.noise_cv = 0.0;
  cfg.exec.io_scale.assign(static_cast<size_t>(schema_.NumObjects()), 1.0);
  for (const char* hot : {"lineitem", "orders"}) {
    cfg.exec.io_scale[static_cast<size_t>(schema_.FindObject(hot))] = 5.0;
  }
  cfg.max_rounds = 3;
  PipelineResult r = RunDotPipeline(problem_, cfg);
  if (r.rounds.size() > 1) {
    EXPECT_GE(r.rounds.back().measured_psr, r.rounds[0].measured_psr);
  }
}

TEST_F(ValidatorTest, InfeasibleProblemShortCircuits) {
  BoxConfig tiny = box_;
  for (auto& sc : tiny.classes) sc.set_capacity_gb(0.01);
  DotProblem p = problem_;
  p.box = &tiny;
  PipelineConfig cfg;
  cfg.exec.noise_cv = 0.0;
  PipelineResult r = RunDotPipeline(p, cfg);
  EXPECT_FALSE(r.validated);
  EXPECT_EQ(r.final.status.code(), StatusCode::kInfeasible);
  EXPECT_EQ(r.rounds.size(), 1u);
}

TEST_F(ValidatorTest, MaxRoundsBoundsTheLoop) {
  PipelineConfig cfg;
  cfg.exec.noise_cv = 0.0;
  // A uniform global slowdown can never be fixed by re-placement, so with
  // strict targets the loop runs out of rounds.
  cfg.exec.io_scale.assign(static_cast<size_t>(schema_.NumObjects()), 50.0);
  cfg.max_rounds = 2;
  DotProblem p = problem_;
  p.relative_sla = 0.9;
  PipelineResult r = RunDotPipeline(p, cfg);
  EXPECT_LE(r.rounds.size(), 2u);
}

}  // namespace
}  // namespace dot
