#include "dot/optimizer.h"

#include <gtest/gtest.h>

#include "catalog/tpch_schema.h"
#include "dot/exhaustive.h"
#include "dot/layout.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/profiler.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

/// Shared fixture: the §4.4.3 small instance (8 objects) where exhaustive
/// search is tractable, so DOT can be judged against the true optimum.
class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest()
      : schema_(MakeTpchEsSubsetSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H-ES", &schema_, &box_, MakeTpchSubsetTemplates(),
                  RepeatSequence(11, 3), PlannerConfig{}),
        profiler_(&schema_, &box_),
        profiles_(profiler_.ProfileWorkload(
            workload_, [&](const std::vector<int>& p) {
              return workload_.Estimate(p);
            })) {
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = &workload_;
    problem_.relative_sla = 0.5;
    problem_.profiles = &profiles_;
  }

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
  Profiler profiler_;
  WorkloadProfiles profiles_;
  DotProblem problem_;
};

TEST_F(OptimizerTest, FindsAFeasibleLayout) {
  DotResult r = DotOptimizer(problem_).Optimize();
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  Layout layout(&schema_, &box_, r.placement);
  EXPECT_TRUE(layout.CheckCapacity().ok());
  PerfEstimate est = workload_.Estimate(r.placement);
  EXPECT_TRUE(MeetsTargets(est, r.targets));
}

TEST_F(OptimizerTest, BeatsTheAllPremiumLayout) {
  DotResult r = DotOptimizer(problem_).Optimize();
  ASSERT_TRUE(r.status.ok());
  DotOptimizer opt(problem_);
  const double toc_l0 = opt.EstimateToc(
      UniformPlacement(schema_.NumObjects(), box_.MostExpensiveClass()),
      nullptr);
  EXPECT_LT(r.toc_cents_per_task, toc_l0);
}

TEST_F(OptimizerTest, EvaluatesLinearlyManyLayouts) {
  DotResult r = DotOptimizer(problem_).Optimize();
  // 4 groups x (3^2 - 1) = 32 moves per sweep, <= 5 sweeps, plus L0 —
  // orders of magnitude below ES's 3^8 = 6561.
  EXPECT_GE(r.layouts_evaluated, 33);
  EXPECT_LE(r.layouts_evaluated, 1 + 5 * 32);
}

TEST_F(OptimizerTest, WithinPaperBandsOfExhaustiveSearch) {
  // §4.4.3: "DOT's response time ... within 9% of ES in all cases, and its
  // TOC was within 16% of ES in most cases." Allow modest headroom.
  DotResult dot = DotOptimizer(problem_).Optimize();
  DotResult es = ExhaustiveSearch(problem_);
  ASSERT_TRUE(dot.status.ok());
  ASSERT_TRUE(es.status.ok());
  EXPECT_LE(es.toc_cents_per_task, dot.toc_cents_per_task * (1 + 1e-9));
  EXPECT_LT(dot.toc_cents_per_task, es.toc_cents_per_task * 1.30);
  EXPECT_LT(dot.estimate.elapsed_ms, es.estimate.elapsed_ms * 1.15);
}

TEST_F(OptimizerTest, RelaxingSlaNeverRaisesToc) {
  double prev = std::numeric_limits<double>::infinity();
  for (double sla : {0.9, 0.5, 0.25, 0.125, 0.05}) {
    DotProblem p = problem_;
    p.relative_sla = sla;
    DotResult r = DotOptimizer(p).Optimize();
    ASSERT_TRUE(r.status.ok()) << "sla=" << sla;
    EXPECT_LE(r.toc_cents_per_task, prev * (1 + 1e-9)) << "sla=" << sla;
    prev = r.toc_cents_per_task;
  }
}

TEST_F(OptimizerTest, StrictSlaPinsDataToPremiumStorage) {
  DotProblem p = problem_;
  p.relative_sla = 0.999;
  DotResult r = DotOptimizer(p).Optimize();
  ASSERT_TRUE(r.status.ok());
  // At ~best-case targets nearly everything must stay on the H-SSD.
  Layout layout(&schema_, &box_, r.placement);
  const SpaceUsage used = layout.SpaceByClass();
  EXPECT_GT(used[2], 0.5 * schema_.TotalSizeGb());
}

TEST_F(OptimizerTest, CapacityCapsAreRespected) {
  BoxConfig capped = box_;
  capped.classes[2].set_capacity_gb(5.0);  // H-SSD squeezed hard
  DssWorkloadModel workload("w", &schema_, &capped,
                            MakeTpchSubsetTemplates(), RepeatSequence(11, 3),
                            PlannerConfig{});
  Profiler profiler(&schema_, &capped);
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      workload,
      [&](const std::vector<int>& p) { return workload.Estimate(p); });
  DotProblem p;
  p.schema = &schema_;
  p.box = &capped;
  p.workload = &workload;
  p.relative_sla = 0.25;
  p.profiles = &profiles;
  DotResult r = DotOptimizer(p).Optimize();
  if (r.status.ok()) {
    Layout layout(&schema_, &capped, r.placement);
    EXPECT_TRUE(layout.CheckCapacity().ok());
    EXPECT_LT(layout.SpaceByClass()[2], 5.0);
  }
}

TEST_F(OptimizerTest, ImpossibleConstraintsReportInfeasible) {
  // Cap every class below the database size: no layout can fit.
  BoxConfig tiny = box_;
  for (auto& sc : tiny.classes) sc.set_capacity_gb(1.0);
  DotProblem p = problem_;
  p.box = &tiny;
  DotResult r = DotOptimizer(p).Optimize();
  EXPECT_EQ(r.status.code(), StatusCode::kInfeasible);
  EXPECT_TRUE(r.placement.empty());
}

TEST_F(OptimizerTest, RelaxationLoopFindsFeasibleSla) {
  // An SLA of ~1.0 with a capacity cap that forbids the premium class is
  // infeasible; the relaxation loop should settle on a lower SLA.
  BoxConfig capped = box_;
  capped.classes[2].set_capacity_gb(2.0);
  DssWorkloadModel workload("w", &schema_, &capped,
                            MakeTpchSubsetTemplates(), RepeatSequence(11, 3),
                            PlannerConfig{});
  Profiler profiler(&schema_, &capped);
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      workload,
      [&](const std::vector<int>& p) { return workload.Estimate(p); });
  DotProblem p;
  p.schema = &schema_;
  p.box = &capped;
  p.workload = &workload;
  p.relative_sla = 0.99;
  p.profiles = &profiles;
  DotResult r = OptimizeWithRelaxation(p, /*relax_factor=*/0.9,
                                       /*min_sla=*/0.01);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_LT(p.relative_sla, 0.99);
}

TEST_F(OptimizerTest, DiscreteCostModelProducesValidResult) {
  DotProblem p = problem_;
  p.cost_model.discrete = true;
  p.cost_model.alpha = 0.5;
  DotResult r = DotOptimizer(p).Optimize();
  ASSERT_TRUE(r.status.ok());
  Layout layout(&schema_, &box_, r.placement);
  EXPECT_NEAR(r.layout_cost_cents_per_hour,
              layout.CostCentsPerHour(p.cost_model), 1e-9);
}

TEST_F(OptimizerTest, MissingComponentAborts) {
  DotProblem p = problem_;
  p.workload = nullptr;
  EXPECT_DEATH(DotOptimizer{p}, "missing");
}

TEST_F(OptimizerTest, OptimizeWithoutProfilesAborts) {
  DotProblem p = problem_;
  p.profiles = nullptr;
  DotOptimizer opt(p);
  EXPECT_DEATH((void)opt.Optimize(), "profiles");
}

}  // namespace
}  // namespace dot
