#include "io/microbench.h"

#include <gtest/gtest.h>

#include "storage/standard_catalog.h"

namespace dot {
namespace {

/// The §3.5.1 benchmark run against a calibrated device model must recover
/// the Table 1 anchors it was calibrated from — this closes the loop
/// between the raw device models and the measurement methodology
/// (including the RW = update - RR subtraction).
class MicrobenchRecoveryTest
    : public ::testing::TestWithParam<std::tuple<StockClass, int>> {};

TEST_P(MicrobenchRecoveryTest, RecoversAnchors) {
  const StockClass cls = std::get<0>(GetParam());
  const int concurrency = std::get<1>(GetParam());
  const StorageClass sc = MakeStockClass(cls);

  MicrobenchConfig cfg;
  cfg.concurrency = concurrency;
  const MeasuredIoProfile measured = RunDeviceMicrobench(sc.device(), cfg);

  for (IoType t : kAllIoTypes) {
    const LatencyAnchors& a = sc.device().anchors(t);
    const double expected = concurrency == 1 ? a.at_c1_ms : a.at_c300_ms;
    EXPECT_NEAR(measured.per_request_ms[t], expected, expected * 1e-6)
        << StockClassName(cls) << " " << IoTypeName(t) << " @c="
        << concurrency;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStockClasses, MicrobenchRecoveryTest,
    ::testing::Combine(::testing::Values(StockClass::kHdd,
                                         StockClass::kHddRaid0,
                                         StockClass::kLssd,
                                         StockClass::kLssdRaid0,
                                         StockClass::kHssd),
                       ::testing::Values(1, 300)),
    [](const auto& info) {
      return std::string(StockClassName(std::get<0>(info.param))) == "HDD"
                 ? std::string("HDD_c") +
                       std::to_string(std::get<1>(info.param))
                 : [&] {
                     std::string n = StockClassName(std::get<0>(info.param));
                     for (char& c : n) {
                       if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                     }
                     return n + "_c" + std::to_string(std::get<1>(info.param));
                   }();
    });

TEST(MicrobenchTest, NoiseStaysNearAnchors) {
  const StorageClass sc = MakeStockClass(StockClass::kHssd);
  MicrobenchConfig cfg;
  cfg.concurrency = 1;
  cfg.noise_cv = 0.05;
  cfg.seed = 17;
  const MeasuredIoProfile measured = RunDeviceMicrobench(sc.device(), cfg);
  for (IoType t : kAllIoTypes) {
    const double expected = sc.device().anchors(t).at_c1_ms;
    EXPECT_NEAR(measured.per_request_ms[t], expected, expected * 0.25)
        << IoTypeName(t);
  }
}

TEST(MicrobenchTest, RwSubtractionIsExactWithoutNoise) {
  // The random-write estimate comes from subtracting the RR share of the
  // update stream; with a noise-free run the recovery must be exact even
  // though RW is never measured in isolation.
  const StorageClass sc = MakeStockClass(StockClass::kLssd);
  MicrobenchConfig cfg;
  cfg.concurrency = 1;
  const MeasuredIoProfile m = RunDeviceMicrobench(sc.device(), cfg);
  EXPECT_NEAR(m.per_request_ms[IoType::kRandWrite],
              sc.device().anchors(IoType::kRandWrite).at_c1_ms, 1e-9);
}

TEST(MicrobenchTest, IntermediateConcurrencyBetweenAnchors) {
  const StorageClass sc = MakeStockClass(StockClass::kHddRaid0);
  MicrobenchConfig cfg;
  cfg.concurrency = 30;
  const MeasuredIoProfile m = RunDeviceMicrobench(sc.device(), cfg);
  const LatencyAnchors& rr = sc.device().anchors(IoType::kRandRead);
  const double lo = std::min(rr.at_c1_ms, rr.at_c300_ms);
  const double hi = std::max(rr.at_c1_ms, rr.at_c300_ms);
  EXPECT_GT(m.per_request_ms[IoType::kRandRead], lo);
  EXPECT_LT(m.per_request_ms[IoType::kRandRead], hi);
}

}  // namespace
}  // namespace dot
