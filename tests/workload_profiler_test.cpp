#include "workload/profiler.h"

#include <gtest/gtest.h>

#include "catalog/tpcc_schema.h"
#include "catalog/tpch_schema.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest()
      : schema_(MakeTpchSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H", &schema_, &box_, MakeTpchTemplates(),
                  RepeatSequence(22, 3), PlannerConfig{}),
        profiler_(&schema_, &box_) {}

  WorkloadProfiles Profile() {
    return profiler_.ProfileWorkload(
        workload_, [&](const std::vector<int>& placement) {
          return workload_.Estimate(placement);
        });
  }

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
  Profiler profiler_;
};

TEST_F(ProfilerTest, BaselineLayoutSplitsTablesAndIndices) {
  const std::vector<int> l = profiler_.BaselineLayout(0, 2);
  for (const DbObject& o : schema_.objects()) {
    EXPECT_EQ(l[o.id], o.IsIndex() ? 2 : 0) << o.name;
  }
}

TEST_F(ProfilerTest, ProfilesAllNineBaselines) {
  WorkloadProfiles profiles = Profile();
  EXPECT_FALSE(profiles.single());
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      const ObjectIoMap& io = profiles.For(i, j);
      EXPECT_EQ(io.size(), static_cast<size_t>(schema_.NumObjects()));
    }
  }
}

TEST_F(ProfilerTest, ProfilesDifferAcrossBaselines) {
  // Plan choice depends on placement, so at least two baselines must yield
  // different per-object I/O (the §3.1 interaction made measurable).
  WorkloadProfiles profiles = Profile();
  EXPECT_GT(profiles.CountDistinct(), 1);
}

TEST_F(ProfilerTest, ProfileMatchesDirectEstimate) {
  WorkloadProfiles profiles = Profile();
  PerfEstimate direct = workload_.Estimate(profiler_.BaselineLayout(1, 2));
  const ObjectIoMap& stored = profiles.For(1, 2);
  for (int o = 0; o < schema_.NumObjects(); ++o) {
    EXPECT_NEAR(stored[o].Total(), direct.io_by_object[o].Total(), 1e-9);
  }
}

TEST_F(ProfilerTest, PlanInvariantWorkloadProfilesOnce) {
  Schema tpcc = MakeTpccSchema(300);
  auto oltp = MakeTpccWorkload(&tpcc, &box_, TpccConfig{});
  Profiler profiler(&tpcc, &box_);
  int calls = 0;
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      *oltp, [&](const std::vector<int>& placement) {
        ++calls;
        return oltp->Estimate(placement);
      });
  EXPECT_EQ(calls, 1);  // §4.5.1: one test layout suffices
  EXPECT_TRUE(profiles.single());
  EXPECT_EQ(profiles.CountDistinct(), 1);
  // Single profile answers any placement pair.
  EXPECT_EQ(profiles.For(0, 0).size(), profiles.For(2, 1).size());
}

TEST(WorkloadProfilesTest, ForUnprofiledPairAborts) {
  WorkloadProfiles profiles(2);
  profiles.Set(0, 0, ObjectIoMap{});
  EXPECT_DEATH((void)profiles.For(1, 1), "not profiled");
}

TEST(WorkloadProfilesTest, SetAfterSingleAborts) {
  WorkloadProfiles profiles(2);
  profiles.SetSingle(ObjectIoMap{});
  EXPECT_DEATH(profiles.Set(0, 0, ObjectIoMap{}), "collapsed");
}

TEST(WorkloadProfilesTest, CountDistinctCollapsesEqualProfiles) {
  WorkloadProfiles profiles(2);
  ObjectIoMap a(3);
  a[0][IoType::kSeqRead] = 100;
  ObjectIoMap b = a;
  ObjectIoMap c(3);
  c[1][IoType::kRandRead] = 5;
  profiles.Set(0, 0, a);
  profiles.Set(0, 1, b);
  profiles.Set(1, 0, c);
  profiles.Set(1, 1, c);
  EXPECT_EQ(profiles.CountDistinct(), 2);
}

}  // namespace
}  // namespace dot
