// The HTAP composite scorer through the whole optimizer stack: the TOC
// fast path must be bit-identical to the full estimate on randomized HTAP
// instances (including io_scale hints), DOT and the exhaustive scan must
// not move when the fast path is toggled, and the exact branch-and-bound
// search — driven by the summed two-side bound — must match the
// enumerating Exhaustive Search bit for bit at 1, 4, and
// hardware-concurrency threads, with pruning counters accounting for the
// full M^N tree.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/chbench.h"
#include "catalog/tpcc_schema.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "dot/bnb_search.h"
#include "dot/candidate_evaluator.h"
#include "dot/exhaustive.h"
#include "storage/standard_catalog.h"
#include "workload/htap_workload.h"
#include "workload/profiler.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

long long PowLL(int m, int n) {
  long long total = 1;
  for (int i = 0; i < n; ++i) total *= m;
  return total;
}

std::vector<int> ThreadCounts() {
  return {1, 4,
          std::max(1, static_cast<int>(std::thread::hardware_concurrency()))};
}

void ExpectSameOptimum(const DotResult& bnb, const DotResult& es,
                       const std::string& what) {
  ASSERT_EQ(bnb.status.code(), es.status.code())
      << what << ": " << bnb.status.ToString() << " vs "
      << es.status.ToString();
  EXPECT_EQ(bnb.placement, es.placement) << what;
  EXPECT_EQ(bnb.toc_cents_per_task, es.toc_cents_per_task) << what;
  EXPECT_EQ(bnb.layout_cost_cents_per_hour, es.layout_cost_cents_per_hour)
      << what;
  EXPECT_EQ(bnb.estimate.elapsed_ms, es.estimate.elapsed_ms) << what;
  EXPECT_EQ(bnb.estimate.tasks_per_hour, es.estimate.tasks_per_hour) << what;
  EXPECT_EQ(bnb.estimate.tpmc, es.estimate.tpmc) << what;
}

void ExpectCountersAccountForTree(const DotResult& r, int m, int n,
                                  const std::string& what) {
  EXPECT_EQ(r.layouts_evaluated + r.layouts_pruned, PowLL(m, n)) << what;
  EXPECT_EQ(
      r.nodes_pruned_bound + r.nodes_pruned_infeasible + r.layouts_evaluated,
      1 + (m - 1) * r.nodes_expanded)
      << what;
}

void ExpectSameCounters(const DotResult& a, const DotResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.layouts_evaluated, b.layouts_evaluated) << what;
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded) << what;
  EXPECT_EQ(a.nodes_pruned_bound, b.nodes_pruned_bound) << what;
  EXPECT_EQ(a.nodes_pruned_infeasible, b.nodes_pruned_infeasible) << what;
  EXPECT_EQ(a.layouts_pruned, b.layouts_pruned) << what;
}

/// A randomized HTAP instance: `tables` tables (PK index each) shared by a
/// random transaction mix (2-3 types with random footprints over tables
/// and indices) and a random analytic template set (per-table scans plus a
/// two-table join), composed at a random mix ratio and coupling. Half the
/// draws cap the premium class so capacity pruning does real work.
struct RandomHtapInstance {
  Schema schema;
  BoxConfig box;
  std::unique_ptr<OltpWorkloadModel> oltp;
  std::unique_ptr<DssWorkloadModel> dss;
  std::unique_ptr<HtapWorkload> htap;

  RandomHtapInstance(uint64_t seed, int tables) {
    Rng rng(seed);
    box = rng.NextBounded(2) == 0 ? MakeBox1() : MakeBox2();
    std::vector<QuerySpec> templates;
    for (int i = 0; i < tables; ++i) {
      const std::string name = "t" + std::to_string(i);
      schema.AddTable(name, 1e5 * (1 + rng.NextBounded(12)),
                      60 + 20 * rng.NextBounded(6));
      schema.AddIndex(name + "_pk", schema.FindObject(name), 8);
      QuerySpec q;
      q.name = "q" + std::to_string(i);
      RelationAccess ra;
      ra.table = name;
      ra.index_sargable = rng.NextBounded(2) == 0;
      ra.selectivity = ra.index_sargable ? rng.NextUniform(0.0005, 0.01)
                                         : rng.NextUniform(0.2, 1.0);
      q.relations = {ra};
      templates.push_back(std::move(q));
    }
    if (tables >= 2) {
      QuerySpec q;
      q.name = "join";
      RelationAccess outer;
      outer.table = "t0";
      outer.selectivity = rng.NextUniform(0.001, 0.05);
      outer.index_sargable = true;
      RelationAccess inner;
      inner.table = "t1";
      q.relations = {outer, inner};
      JoinStep join;
      join.matches_per_outer = rng.NextUniform(0.5, 4.0);
      join.inner_indexable = true;
      q.joins = {join};
      templates.push_back(std::move(q));
    }
    const int num_templates = static_cast<int>(templates.size());
    dss = std::make_unique<DssWorkloadModel>(
        "rand-dss", &schema, &box, std::move(templates),
        RepeatSequence(num_templates, 2), PlannerConfig{});

    // Random transaction mix over the shared objects: every object gets
    // some random I/O from at least one type, so the OLTP side has an
    // opinion about every placement decision.
    const int n = schema.NumObjects();
    const int num_txns = 2 + static_cast<int>(rng.NextBounded(2));
    std::vector<TxnType> txns;
    std::vector<double> raw_weights;
    double total_weight = 0.0;
    for (int t = 0; t < num_txns; ++t) {
      raw_weights.push_back(rng.NextUniform(0.5, 2.0));
      total_weight += raw_weights.back();
    }
    for (int t = 0; t < num_txns; ++t) {
      TxnType txn;
      txn.name = t == 0 ? "NewOrder" : "Txn" + std::to_string(t);
      txn.weight = raw_weights[static_cast<size_t>(t)] / total_weight;
      txn.cpu_ms = rng.NextUniform(0.1, 0.6);
      txn.overhead_ms = rng.NextUniform(20.0, 80.0);
      txn.io.assign(static_cast<size_t>(n), IoVector{});
      for (int o = 0; o < n; ++o) {
        if (rng.NextBounded(3) == 0) continue;  // this type skips the object
        txn.io[static_cast<size_t>(o)][IoType::kRandRead] =
            rng.NextUniform(0.1, 8.0);
        if (rng.NextBounded(2) == 0) {
          txn.io[static_cast<size_t>(o)][IoType::kRandWrite] =
              rng.NextUniform(0.1, 4.0);
        }
      }
      txns.push_back(std::move(txn));
    }
    oltp = std::make_unique<OltpWorkloadModel>(
        "rand-oltp", &schema, &box, std::move(txns),
        /*concurrency=*/50.0, /*measurement_period_ms=*/3600.0 * 1000.0,
        /*contention_reference_ms=*/190.0);

    HtapConfig config;
    config.analytics_streams = rng.NextUniform(0.25, 6.0);
    config.interference_kappa =
        rng.NextBounded(4) == 0 ? 0.0 : rng.NextUniform(0.01, 0.2);
    htap = std::make_unique<HtapWorkload>("rand-htap", oltp.get(), dss.get(),
                                          &schema, &box, config);

    if (rng.NextBounded(2) == 0) {
      const int premium = box.MostExpensiveClass();
      box.classes[static_cast<size_t>(premium)].set_capacity_gb(
          schema.TotalSizeGb() * rng.NextUniform(0.2, 0.8));
    }
  }

  DotProblem Problem() const {
    DotProblem p;
    p.schema = &schema;
    p.box = &box;
    p.workload = htap.get();
    return p;
  }
};

void ExpectEvalIdentical(const CandidateEval& fast, const CandidateEval& full,
                         const std::vector<int>& placement) {
  std::string where = "placement:";
  for (int c : placement) where += " " + std::to_string(c);
  EXPECT_EQ(fast.fits, full.fits) << where;
  EXPECT_EQ(fast.feasible, full.feasible) << where;
  EXPECT_EQ(fast.toc, full.toc) << where;
  EXPECT_EQ(fast.cost_cents_per_hour, full.cost_cents_per_hour) << where;
  EXPECT_EQ(fast.violation_gb, full.violation_gb) << where;
}

/// EvaluateQuick vs EvaluateOne on a random single-object-mutation walk
/// (the plan cache's hit pattern), as in dot_fast_eval_test.
void CheckRandomizedEquivalence(const DotProblem& problem, uint64_t seed,
                                int rounds) {
  DotOptimizer estimator(problem);
  ThreadPool pool(1);
  CandidateEvaluator evaluator(estimator, &pool);
  const int n = problem.schema->NumObjects();
  const int m = problem.box->NumClasses();
  Rng rng(seed);
  std::vector<int> placement(static_cast<size_t>(n), 0);
  for (int round = 0; round < rounds; ++round) {
    if (round % 7 == 0) {
      for (int o = 0; o < n; ++o) {
        placement[static_cast<size_t>(o)] =
            static_cast<int>(rng.NextBounded(static_cast<uint64_t>(m)));
      }
    } else {
      const size_t o = rng.NextBounded(static_cast<uint64_t>(n));
      placement[o] =
          static_cast<int>(rng.NextBounded(static_cast<uint64_t>(m)));
    }
    const Layout layout(problem.schema, problem.box, placement);
    ExpectEvalIdentical(evaluator.EvaluateQuick(layout),
                        evaluator.EvaluateOne(layout), placement);
  }
  // The analytic side's plan cache must have seen both traffic kinds.
  EXPECT_GT(evaluator.plan_cache_hits(), 0);
  EXPECT_GT(evaluator.plan_cache_misses(), 0);
}

TEST(HtapFastEvalTest, RandomizedPlacementsMatchFullPathExactly) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    RandomHtapInstance inst(seed * 131, 3);
    DotProblem problem = inst.Problem();
    problem.relative_sla = 0.25 + 0.15 * static_cast<double>(seed % 3);
    SCOPED_TRACE("seed " + std::to_string(seed));
    CheckRandomizedEquivalence(problem, seed * 7919, /*rounds=*/120);
  }
}

TEST(HtapFastEvalTest, RandomizedPlacementsMatchWithIoScaleHint) {
  RandomHtapInstance inst(5, 3);
  DotProblem problem = inst.Problem();
  problem.relative_sla = 0.3;
  for (int o = 0; o < inst.schema.NumObjects(); ++o) {
    problem.io_scale_hint.push_back(0.5 + 0.25 * (o % 4));
  }
  CheckRandomizedEquivalence(problem, 0xbeef, /*rounds=*/100);
}

TEST(HtapFastEvalTest, ChbenchOptimizeMatchesSlowPathAtEveryThreadCount) {
  // The real CH-benCH composition through the DOT heuristic: toggling the
  // fast path and the engine fan-out must not move the result.
  Schema full = MakeTpccSchema(30);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "orders", "pk_orders"});
  BoxConfig box = MakeBox2();
  HtapBundle bundle = MakeChbenchHtapWorkload(&schema, &box, HtapConfig{});
  Profiler profiler(&schema, &box);
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      *bundle.htap,
      [&](const std::vector<int>& p) { return bundle.htap->Estimate(p); });
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = bundle.htap.get();
  problem.relative_sla = 0.25;
  problem.profiles = &profiles;

  DotProblem slow = problem;
  slow.options.use_fast_eval = false;
  const DotResult full_r = DotOptimizer(slow).Optimize();
  ASSERT_TRUE(full_r.status.ok()) << full_r.status.ToString();
  for (int threads : ThreadCounts()) {
    DotProblem fast = problem;
    fast.options.num_threads = threads;
    const DotResult r = DotOptimizer(fast).Optimize();
    const std::string what = "num_threads=" + std::to_string(threads);
    ASSERT_EQ(r.status.code(), full_r.status.code()) << what;
    EXPECT_EQ(r.placement, full_r.placement) << what;
    EXPECT_EQ(r.toc_cents_per_task, full_r.toc_cents_per_task) << what;
    EXPECT_EQ(r.estimate.tasks_per_hour, full_r.estimate.tasks_per_hour)
        << what;
  }
}

TEST(HtapBnbTest, MatchesEnumerationOnRandomizedInstances) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const int tables = 2 + static_cast<int>(seed % 2);  // 4 or 6 objects
    RandomHtapInstance inst(seed, tables);
    DotProblem problem = inst.Problem();
    problem.relative_sla = 0.2 + 0.15 * static_cast<double>(seed % 3);
    if (seed % 2 == 0) {
      Rng rng(seed * 31);
      for (int o = 0; o < inst.schema.NumObjects(); ++o) {
        problem.io_scale_hint.push_back(rng.NextUniform(0.5, 1.5));
      }
    }
    if (seed % 3 == 0) {
      problem.cost_model.discrete = true;
      problem.cost_model.alpha = 0.5;
    }
    const std::string what = "htap seed " + std::to_string(seed);
    DotResult es = ExactSearch(problem, ExactStrategy::kEnumerate);
    DotResult bnb = ExactSearch(problem, ExactStrategy::kBranchAndBound);
    ExpectSameOptimum(bnb, es, what);
    ExpectCountersAccountForTree(bnb, inst.box.NumClasses(),
                                 inst.schema.NumObjects(), what);
  }
}

TEST(HtapBnbTest, MatchesEnumerationOnChbenchSubset) {
  Schema full = MakeTpccSchema(30);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "orders", "pk_orders"});
  BoxConfig box = MakeBox2();
  for (double streams : {0.5, 4.0}) {
    HtapConfig config;
    config.analytics_streams = streams;
    HtapBundle bundle = MakeChbenchHtapWorkload(&schema, &box, config);
    DotProblem problem;
    problem.schema = &schema;
    problem.box = &box;
    problem.workload = bundle.htap.get();
    problem.relative_sla = 0.2;
    problem.options.num_threads = 0;
    const std::string what = "chbench streams=" + std::to_string(streams);
    DotResult es = ExactSearch(problem, ExactStrategy::kEnumerate);
    DotResult bnb = ExactSearch(problem, ExactStrategy::kBranchAndBound);
    ExpectSameOptimum(bnb, es, what);
    ExpectCountersAccountForTree(bnb, box.NumClasses(), schema.NumObjects(),
                                 what);
    // The summed two-side bound must do real work, not degenerate to
    // enumeration.
    if (bnb.status.ok()) {
      EXPECT_LT(bnb.layouts_evaluated, es.layouts_evaluated / 2) << what;
    }
  }
}

TEST(HtapBnbTest, DeterministicAcrossThreadCountsIncludingCounters) {
  RandomHtapInstance inst(17, 3);
  DotProblem problem = inst.Problem();
  problem.relative_sla = 0.3;
  problem.options.num_threads = 1;
  const DotResult baseline =
      ExactSearch(problem, ExactStrategy::kBranchAndBound);
  for (int t : ThreadCounts()) {
    DotProblem p = inst.Problem();
    p.relative_sla = 0.3;
    p.options.num_threads = t;
    const DotResult r = ExactSearch(p, ExactStrategy::kBranchAndBound);
    const std::string what = "num_threads=" + std::to_string(t);
    ExpectSameOptimum(r, baseline, what);
    ExpectSameCounters(r, baseline, what);
  }
}

TEST(HtapBnbTest, InfeasibleVerdictMatchesEnumeration) {
  RandomHtapInstance inst(23, 2);
  BoxConfig tiny = inst.box;
  for (StorageClass& sc : tiny.classes) sc.set_capacity_gb(0.001);
  DotProblem problem = inst.Problem();
  problem.box = &tiny;
  DotResult es = ExactSearch(problem, ExactStrategy::kEnumerate);
  DotResult bnb = ExactSearch(problem, ExactStrategy::kBranchAndBound);
  EXPECT_EQ(es.status.code(), StatusCode::kInfeasible);
  EXPECT_EQ(bnb.status.code(), StatusCode::kInfeasible);
  ExpectCountersAccountForTree(bnb, tiny.NumClasses(),
                               inst.schema.NumObjects(), "htap infeasible");
}

}  // namespace
}  // namespace dot
