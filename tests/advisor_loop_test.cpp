// Integration tests of the always-on advisor loop (advisor/advisor.h):
//
//   * a noiseless trace whose profile matches the incumbent plan's model
//     yields zero re-plans and reproduces the single-shot dot::Solve
//     result bit for bit — the advisor at rest IS the optimizer;
//   * a step change triggers a re-plan with bounded latency, and never
//     before the shift;
//   * the decision sequence is bit-identical at 1, 4 and all hardware
//     threads (the engine's parallelism cannot leak into decisions);
//   * randomized full-schema HTAP sessions (the reason this suite carries
//     the `slow` label) hold the structural invariants: migration counts
//     match the layout track, the realized replay reproduces the advisor's
//     causality, and every run is thread-count deterministic.

#include "advisor/advisor.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/tpcc_schema.h"
#include "catalog/tpch_schema.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "exec/trace_replay.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/htap_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

/// Everything the advisor decided, as one comparable string: %a hex floats
/// so "identical" means bit-identical, not round-tripped-through-decimal.
std::string DecisionFingerprint(const AdvisorRun& run) {
  std::string fp = StrPrintf("init:%d;", run.num_replans);
  for (const AdvisorDecision& d : run.decisions) {
    fp += StrPrintf("%d:%d:%d:%a:%a:%a:%a;", d.window, d.replanned ? 1 : 0,
                    d.migrated ? 1 : 0, d.deviation, d.statistic,
                    d.incumbent_toc, d.candidate_toc);
  }
  for (const std::vector<int>& layout : run.layout_by_window) {
    for (int c : layout) fp += static_cast<char>('0' + c);
    fp += ';';
  }
  return fp;
}

/// A small TPC-H instance with a trace of `steady` windows of the base
/// model followed by `shifted` windows with 10x I/O on the lineitem group.
struct TpchSession {
  Schema schema;
  BoxConfig box;
  DssWorkloadModel workload;
  DotProblem problem;

  TpchSession()
      : schema(MakeTpchEsSubsetSchema(20.0)),
        box(MakeBox1()),
        workload("TPC-H-ES", &schema, &box, MakeTpchSubsetTemplates(),
                 RepeatSequence(11, 3), PlannerConfig{}) {
    problem.schema = &schema;
    problem.box = &box;
    problem.workload = &workload;
    problem.relative_sla = 0.5;
  }

  WorkloadTraceSpec Trace(int steady, int shifted) const {
    WorkloadTraceSpec spec;
    std::vector<double> scale(static_cast<size_t>(schema.NumObjects()), 1.0);
    scale[static_cast<size_t>(schema.FindObject("lineitem"))] = 10.0;
    for (int w = 0; w < steady + shifted; ++w) {
      TraceWindow window;
      window.workload = &workload;
      window.duration_hours = 1.0;
      if (w >= steady) window.io_scale = scale;
      window.label = w >= steady ? "shifted" : "steady";
      spec.windows.push_back(window);
    }
    return spec;
  }
};

TEST(AdvisorLoopTest, NoiselessUnchangedProfileNeverReplans) {
  TpchSession session;
  Advisor advisor(session.problem, AdvisorConfig{});
  ASSERT_TRUE(advisor.Init().ok());

  // The reference: the same problem through the single-shot facade.
  const SolveResult reference = Solve(session.problem, SolveSpec{});
  ASSERT_TRUE(reference.status.ok());
  EXPECT_EQ(advisor.incumbent(), reference.placement);
  EXPECT_EQ(advisor.incumbent_toc(), reference.toc_cents_per_task);

  const WorkloadTrace trace = RecordTraceWithExecutor(
      session.Trace(/*steady=*/24, /*shifted=*/0), advisor.incumbent());
  RecordedTraceFeed feed(&trace);
  const AdvisorRun run = advisor.Run(&feed);
  ASSERT_TRUE(run.status.ok());

  EXPECT_EQ(run.num_replans, 0);
  EXPECT_EQ(run.num_migrations, 0);
  ASSERT_EQ(run.layout_by_window.size(), 24u);
  for (const std::vector<int>& layout : run.layout_by_window) {
    EXPECT_EQ(layout, reference.placement);
  }
  // Still bitwise the facade's answer after a full quiet day.
  EXPECT_EQ(run.final_layout, reference.placement);
  EXPECT_EQ(advisor.incumbent_toc(), reference.toc_cents_per_task);
  for (const AdvisorDecision& d : run.decisions) {
    EXPECT_FALSE(d.replanned);
    EXPECT_DOUBLE_EQ(d.deviation, 0.0);
  }
}

TEST(AdvisorLoopTest, StepChangeTriggersReplanWithBoundedLatency) {
  TpchSession session;
  const int steady = 6;
  Advisor advisor(session.problem, AdvisorConfig{});
  ASSERT_TRUE(advisor.Init().ok());
  const WorkloadTrace trace = RecordTraceWithExecutor(
      session.Trace(steady, /*shifted=*/6), advisor.incumbent());
  RecordedTraceFeed feed(&trace);
  const AdvisorRun run = advisor.Run(&feed);
  ASSERT_TRUE(run.status.ok());

  ASSERT_GE(run.num_replans, 1);
  int first_replan = -1;
  for (const AdvisorDecision& d : run.decisions) {
    if (d.replanned) {
      first_replan = d.window;
      break;
    }
  }
  // Never before the shift; within three windows of it (a 10x step is
  // far beyond the default deadband).
  EXPECT_GE(first_replan, steady);
  EXPECT_LE(first_replan, steady + 2);
}

TEST(AdvisorLoopTest, DecisionSequenceIsThreadCountInvariant) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<std::string> fingerprints;
  for (int threads : {1, 4, hw}) {
    TpchSession session;
    session.problem.options.num_threads = threads;
    Advisor advisor(session.problem, AdvisorConfig{});
    ASSERT_TRUE(advisor.Init().ok());
    const WorkloadTrace trace = RecordTraceWithExecutor(
        session.Trace(6, 6), advisor.incumbent());
    RecordedTraceFeed feed(&trace);
    const AdvisorRun run = advisor.Run(&feed);
    ASSERT_TRUE(run.status.ok());
    fingerprints.push_back(DecisionFingerprint(run));
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

TEST(AdvisorLoopTest, RunIsResumableAcrossFeedSegments) {
  TpchSession session;
  const WorkloadTraceSpec spec = session.Trace(6, 6);

  Advisor whole_advisor(session.problem, AdvisorConfig{});
  ASSERT_TRUE(whole_advisor.Init().ok());
  const WorkloadTrace trace =
      RecordTraceWithExecutor(spec, whole_advisor.incumbent());
  RecordedTraceFeed whole_feed(&trace);
  const AdvisorRun whole = whole_advisor.Run(&whole_feed);

  // The same trace cut into two feed segments: state carries over, so the
  // concatenated decision sequence is identical.
  WorkloadTrace first_half, second_half;
  for (size_t e = 0; e < trace.events.size(); ++e) {
    (e < 6 ? first_half : second_half).events.push_back(trace.events[e]);
  }
  Advisor split_advisor(session.problem, AdvisorConfig{});
  RecordedTraceFeed feed_a(&first_half);
  RecordedTraceFeed feed_b(&second_half);
  const AdvisorRun run_a = split_advisor.Run(&feed_a);
  const AdvisorRun run_b = split_advisor.Run(&feed_b);
  ASSERT_TRUE(run_a.status.ok());
  ASSERT_TRUE(run_b.status.ok());

  AdvisorRun stitched = run_a;
  stitched.decisions.insert(stitched.decisions.end(),
                            run_b.decisions.begin(), run_b.decisions.end());
  stitched.layout_by_window.insert(stitched.layout_by_window.end(),
                                   run_b.layout_by_window.begin(),
                                   run_b.layout_by_window.end());
  stitched.num_replans += run_b.num_replans;
  EXPECT_EQ(DecisionFingerprint(stitched), DecisionFingerprint(whole));
  EXPECT_EQ(split_advisor.incumbent(), whole_advisor.incumbent());
}

/// Randomized full-schema HTAP sessions: the CH-benCH mix over a TPC-C
/// schema subset, random drift pattern, random SLA — the advisor must
/// stay deterministic and structurally consistent on every draw.
TEST(AdvisorLoopSlowTest, RandomizedFullSchemaSessionsHoldInvariants) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed * 2654435761u);

    BoxConfig box = MakeBox2();
    Schema full = MakeTpccSchema(300);
    Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                                 "pk_order_line", "customer", "pk_customer",
                                 "orders", "pk_orders"});
    HtapConfig htap_config;
    htap_config.analytics_streams = 1.0 + 7.0 * rng.NextUniform(0.0, 1.0);
    HtapBundle bundle = MakeChbenchHtapWorkload(
        &schema, &box, htap_config, TpccConfig{}, /*analytics_reps=*/1);

    DotProblem problem;
    problem.schema = &schema;
    problem.box = &box;
    problem.workload = bundle.htap.get();
    problem.relative_sla = rng.NextUniform(0.25, 0.5);

    // A random 12-window day: each window scales a random object group.
    WorkloadTraceSpec spec;
    for (int w = 0; w < 12; ++w) {
      TraceWindow window;
      window.workload = bundle.htap.get();
      window.duration_hours = 0.5 + rng.NextUniform(0.0, 1.0);
      if (rng.NextBounded(3) == 0) {
        std::vector<double> scale(
            static_cast<size_t>(schema.NumObjects()), 1.0);
        scale[rng.NextBounded(
            static_cast<uint64_t>(schema.NumObjects()))] =
            2.0 + rng.NextUniform(0.0, 8.0);
        window.io_scale = scale;
      }
      spec.windows.push_back(window);
    }

    AdvisorConfig config;
    config.migration.transfer_price_cents_per_gb = 0.03;
    config.migration.downtime_price_cents_per_hour = 15.0;
    config.payback_horizon_hours = 6.0;

    std::vector<std::string> fingerprints;
    AdvisorRun last_run;
    for (int threads : {1, 4, hw}) {
      DotProblem threaded = problem;
      threaded.options.num_threads = threads;
      Advisor advisor(threaded, config);
      ASSERT_TRUE(advisor.Init().ok());
      const WorkloadTrace trace =
          RecordTraceWithExecutor(spec, advisor.incumbent());
      RecordedTraceFeed feed(&trace);
      last_run = advisor.Run(&feed);
      ASSERT_TRUE(last_run.status.ok());
      fingerprints.push_back(DecisionFingerprint(last_run));
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]) << "seed " << seed;
    EXPECT_EQ(fingerprints[0], fingerprints[2]) << "seed " << seed;

    // Structural invariants of the final run.
    ASSERT_EQ(last_run.layout_by_window.size(), spec.windows.size());
    ASSERT_EQ(last_run.decisions.size(), spec.windows.size());
    int track_migrations = 0;
    for (size_t w = 0; w + 1 < last_run.layout_by_window.size(); ++w) {
      if (last_run.layout_by_window[w] != last_run.layout_by_window[w + 1]) {
        ++track_migrations;
      }
    }
    if (last_run.final_layout != last_run.layout_by_window.back()) {
      ++track_migrations;
    }
    EXPECT_EQ(track_migrations, last_run.num_migrations) << "seed " << seed;
    EXPECT_EQ(last_run.layout_by_window.front(), last_run.initial_layout);

    // The realized replay accepts the advisor's track as-is.
    TrackReplayConfig replay;
    replay.migration = config.migration;
    replay.migration_weight = 0.0;
    const TrackReplayResult realized = ReplayLayoutTrack(
        spec, last_run.layout_by_window, schema, box, replay);
    ASSERT_TRUE(realized.status.ok()) << "seed " << seed;
    EXPECT_EQ(static_cast<size_t>(spec.windows.size()),
              realized.windows.size());
  }
}

}  // namespace
}  // namespace dot
