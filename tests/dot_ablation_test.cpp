// Tests for the optimizer's ablation knobs (acceptance rule, object
// grouping, sweep budget) and the targets override used by generalized
// provisioning.

#include <gtest/gtest.h>

#include "catalog/tpch_schema.h"
#include "dot/dot.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

class AblationTest : public ::testing::Test {
 protected:
  AblationTest()
      : schema_(MakeTpchEsSubsetSchema(20.0)),
        box_(MakeBox1()),
        workload_("w", &schema_, &box_, MakeTpchSubsetTemplates(),
                  RepeatSequence(11, 3), PlannerConfig{}),
        profiler_(&schema_, &box_),
        profiles_(profiler_.ProfileWorkload(
            workload_, [&](const std::vector<int>& p) {
              return workload_.Estimate(p);
            })) {
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = &workload_;
    problem_.relative_sla = 0.5;
    problem_.profiles = &profiles_;
  }

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
  Profiler profiler_;
  WorkloadProfiles profiles_;
  DotProblem problem_;
};

TEST_F(AblationTest, LiteralProcedure1StillFeasibleButWorse) {
  DotProblem literal = problem_;
  literal.options.acceptance = MoveAcceptance::kAnyFeasible;
  literal.options.max_sweeps = 1;
  DotResult lit = DotOptimizer(literal).Optimize();
  DotResult full = DotOptimizer(problem_).Optimize();
  ASSERT_TRUE(lit.status.ok());
  ASSERT_TRUE(full.status.ok());
  // The literal rule still returns a constraint-satisfying layout…
  PerfEstimate est = workload_.Estimate(lit.placement);
  EXPECT_TRUE(MeetsTargets(est, lit.targets));
  // …but never beats the refined rule.
  EXPECT_GE(lit.toc_cents_per_task, full.toc_cents_per_task * (1 - 1e-9));
}

TEST_F(AblationTest, UngroupedMovesStillSatisfyConstraints) {
  DotProblem ungrouped = problem_;
  ungrouped.options.group_objects = false;
  DotResult r = DotOptimizer(ungrouped).Optimize();
  ASSERT_TRUE(r.status.ok());
  Layout layout(&schema_, &box_, r.placement);
  EXPECT_TRUE(layout.CheckCapacity().ok());
  EXPECT_TRUE(MeetsTargets(workload_.Estimate(r.placement), r.targets));
}

TEST_F(AblationTest, UngroupedEnumeratesFewerLayoutsPerSweep) {
  // N singleton groups x (M-1) moves vs G groups x (M^2 - 1): 8x2=16 vs
  // 4x8=32 per sweep.
  DotProblem ungrouped = problem_;
  ungrouped.options.group_objects = false;
  ungrouped.options.max_sweeps = 1;
  DotProblem grouped = problem_;
  grouped.options.max_sweeps = 1;
  DotResult u = DotOptimizer(ungrouped).Optimize();
  DotResult g = DotOptimizer(grouped).Optimize();
  EXPECT_EQ(u.layouts_evaluated, 1 + 16);
  EXPECT_EQ(g.layouts_evaluated, 1 + 32);
}

TEST_F(AblationTest, MoreSweepsNeverHurt) {
  DotProblem one = problem_;
  one.options.max_sweeps = 1;
  DotProblem five = problem_;
  five.options.max_sweeps = 5;
  DotResult r1 = DotOptimizer(one).Optimize();
  DotResult r5 = DotOptimizer(five).Optimize();
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r5.status.ok());
  EXPECT_LE(r5.toc_cents_per_task, r1.toc_cents_per_task * (1 + 1e-9));
}

TEST_F(AblationTest, TargetsOverrideReplacesRelativeSla) {
  // Override with near-impossible caps: everything but the premium layout
  // violates, and the premium layout is the only feasible answer.
  PerfTargets strict = MakePerfTargets(workload_, box_,
                                       schema_.NumObjects(), 0.999);
  DotProblem p = problem_;
  p.relative_sla = 0.01;  // would be trivial…
  p.targets_override = &strict;  // …but the override wins
  DotResult r = DotOptimizer(p).Optimize();
  ASSERT_TRUE(r.status.ok());
  // At ~best-case caps, nearly all space stays premium.
  Layout layout(&schema_, &box_, r.placement);
  EXPECT_GT(layout.SpaceByClass()[2], 0.5 * schema_.TotalSizeGb());
}

TEST_F(AblationTest, TargetsOverrideAppliesToExhaustiveSearch) {
  PerfTargets loose =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 0.05);
  DotProblem p = problem_;
  p.targets_override = &loose;
  DotResult es = ExhaustiveSearch(p);
  ASSERT_TRUE(es.status.ok());
  EXPECT_DOUBLE_EQ(es.targets.relative_sla, 0.05);
}

TEST(ContentionModelTest, SaturationReducesThroughputSuperlinearly) {
  Schema schema = MakeTpccSchema(50);
  BoxConfig box = MakeBox2();
  TpccConfig with;
  TpccConfig without;
  without.contention_reference_ms = -1.0;
  auto w_con = MakeTpccWorkload(&schema, &box, with);
  auto w_lin = MakeTpccWorkload(&schema, &box, without);
  const auto premium = UniformPlacement(schema.NumObjects(), 2);
  const auto cheap = UniformPlacement(schema.NumObjects(), 0);
  const double spread_lin =
      w_lin->Estimate(premium).tpmc / w_lin->Estimate(cheap).tpmc;
  const double spread_con =
      w_con->Estimate(premium).tpmc / w_con->Estimate(cheap).tpmc;
  // Contention widens the premium-vs-cheap spread.
  EXPECT_GT(spread_con, spread_lin * 1.5);
  // And never inverts the ordering.
  EXPECT_GT(spread_con, 1.0);
  EXPECT_GT(spread_lin, 1.0);
}

TEST(ContentionModelTest, DegradationIsCappedAtTenX) {
  Schema schema = MakeTpccSchema(300);
  BoxConfig box = MakeBox2();
  TpccConfig cfg;
  cfg.contention_reference_ms = 1.0;  // absurdly low: everything saturates
  auto w = MakeTpccWorkload(&schema, &box, cfg);
  TpccConfig off;
  off.contention_reference_ms = -1.0;
  auto w_off = MakeTpccWorkload(&schema, &box, off);
  const auto placement = UniformPlacement(schema.NumObjects(), 2);
  const double ratio =
      w_off->Estimate(placement).tpmc / w->Estimate(placement).tpmc;
  EXPECT_NEAR(ratio, 10.0, 1e-6);
}

}  // namespace
}  // namespace dot
