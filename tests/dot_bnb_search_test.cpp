// Pins the branch-and-bound exact search (ExactStrategy::kBranchAndBound)
// to the enumerating Exhaustive Search bit for bit on every tractable
// instance — same placement, same TOC, same lexicographic tie-break, same
// infeasibility verdicts — across randomized problems (varying box, object
// count, SLA, io_scale hints, discrete cost model, targets_override),
// checks determinism across 1/4/hardware threads including every pruning
// counter, and checks that the counters account for the full M^N tree.

#include "dot/bnb_search.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/tpcc_schema.h"
#include "catalog/tpch_schema.h"
#include "common/rng.h"
#include "dot/exhaustive.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/profiler.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

long long PowLL(int m, int n) {
  long long total = 1;
  for (int i = 0; i < n; ++i) total *= m;
  return total;
}

/// Bit-identical optimum: the contract is equality of doubles, not
/// EXPECT_NEAR — the two strategies must score the winner through the same
/// kernels.
void ExpectSameOptimum(const DotResult& bnb, const DotResult& es,
                       const std::string& what) {
  ASSERT_EQ(bnb.status.code(), es.status.code())
      << what << ": " << bnb.status.ToString() << " vs "
      << es.status.ToString();
  EXPECT_EQ(bnb.placement, es.placement) << what;
  EXPECT_EQ(bnb.toc_cents_per_task, es.toc_cents_per_task) << what;
  EXPECT_EQ(bnb.layout_cost_cents_per_hour, es.layout_cost_cents_per_hour)
      << what;
  EXPECT_EQ(bnb.estimate.elapsed_ms, es.estimate.elapsed_ms) << what;
  EXPECT_EQ(bnb.estimate.tasks_per_hour, es.estimate.tasks_per_hour) << what;
  EXPECT_EQ(bnb.estimate.tpmc, es.estimate.tpmc) << what;
}

/// Every leaf of the M^N tree is either evaluated or under exactly one
/// pruned subtree, and every visited node is classified exactly once:
///   layouts_evaluated + layouts_pruned              == M^N
///   prunes + leaves                                 == 1 + (M-1)·expanded
void ExpectCountersAccountForTree(const DotResult& r, int m, int n,
                                  const std::string& what) {
  EXPECT_EQ(r.layouts_evaluated + r.layouts_pruned, PowLL(m, n)) << what;
  EXPECT_EQ(
      r.nodes_pruned_bound + r.nodes_pruned_infeasible + r.layouts_evaluated,
      1 + (m - 1) * r.nodes_expanded)
      << what;
}

void ExpectSameCounters(const DotResult& a, const DotResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.layouts_evaluated, b.layouts_evaluated) << what;
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded) << what;
  EXPECT_EQ(a.nodes_pruned_bound, b.nodes_pruned_bound) << what;
  EXPECT_EQ(a.nodes_pruned_infeasible, b.nodes_pruned_infeasible) << what;
  EXPECT_EQ(a.layouts_pruned, b.layouts_pruned) << what;
}

/// A randomized DSS instance: `tables` tables (PK index each), per-table
/// scan templates with random selectivity/sargability plus two-table join
/// templates (footprints spanning object groups), random premium-class
/// capacity caps on some draws.
struct RandomDssInstance {
  Schema schema;
  BoxConfig box;
  std::unique_ptr<DssWorkloadModel> workload;

  RandomDssInstance(uint64_t seed, int tables) {
    Rng rng(seed);
    box = rng.NextBounded(2) == 0 ? MakeBox1() : MakeBox2();
    std::vector<QuerySpec> templates;
    for (int i = 0; i < tables; ++i) {
      const std::string name = "t" + std::to_string(i);
      schema.AddTable(name, 1e5 * (1 + rng.NextBounded(20)),
                      60 + 20 * rng.NextBounded(6));
      schema.AddIndex(name + "_pk", schema.FindObject(name), 8);
      QuerySpec q;
      q.name = "q" + std::to_string(i);
      RelationAccess ra;
      ra.table = name;
      ra.index_sargable = rng.NextBounded(2) == 0;
      ra.selectivity = ra.index_sargable ? rng.NextUniform(0.0005, 0.01)
                                         : rng.NextUniform(0.2, 1.0);
      q.relations = {ra};
      templates.push_back(std::move(q));
    }
    for (int i = 0; i + 1 < tables; i += 2) {
      QuerySpec q;
      q.name = "j" + std::to_string(i);
      RelationAccess outer;
      outer.table = "t" + std::to_string(i);
      outer.selectivity = rng.NextUniform(0.001, 0.05);
      outer.index_sargable = true;
      RelationAccess inner;
      inner.table = "t" + std::to_string(i + 1);
      q.relations = {outer, inner};
      JoinStep join;
      join.matches_per_outer = rng.NextUniform(0.5, 4.0);
      join.inner_indexable = true;
      q.joins = {join};
      templates.push_back(std::move(q));
    }
    const int num_templates = static_cast<int>(templates.size());
    if (rng.NextBounded(2) == 0) {
      // Premium-class capacity cap: forces real capacity/feasibility
      // pruning decisions instead of all-fit instances.
      const int premium = box.MostExpensiveClass();
      box.classes[static_cast<size_t>(premium)].set_capacity_gb(
          schema.TotalSizeGb() * rng.NextUniform(0.2, 0.8));
    }
    workload = std::make_unique<DssWorkloadModel>(
        "rand", &schema, &box, std::move(templates),
        RepeatSequence(num_templates, 2), PlannerConfig{});
  }

  DotProblem Problem() const {
    DotProblem p;
    p.schema = &schema;
    p.box = &box;
    p.workload = workload.get();
    return p;
  }
};

TEST(BnbSearchTest, MatchesEnumerationOnRandomizedDssInstances) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7919);
    const int tables = 2 + static_cast<int>(rng.NextBounded(4));  // 4-10 obj
    RandomDssInstance inst(seed, tables);
    DotProblem problem = inst.Problem();
    problem.relative_sla = 0.3 + 0.2 * static_cast<double>(seed % 3);

    // Random refinement-style io_scale hints on half the draws.
    if (seed % 2 == 0) {
      for (int o = 0; o < inst.schema.NumObjects(); ++o) {
        problem.io_scale_hint.push_back(rng.NextUniform(0.5, 1.5));
      }
    }
    // Discrete cost model on a third of the draws.
    if (seed % 3 == 0) {
      problem.cost_model.discrete = true;
      problem.cost_model.alpha = rng.NextUniform(0.1, 0.9);
    }

    const std::string what = "dss seed " + std::to_string(seed);
    DotResult es = ExactSearch(problem, ExactStrategy::kEnumerate);
    DotResult bnb = ExactSearch(problem, ExactStrategy::kBranchAndBound);
    ExpectSameOptimum(bnb, es, what);
    ExpectCountersAccountForTree(bnb, inst.box.NumClasses(),
                                 inst.schema.NumObjects(), what);
  }
}

TEST(BnbSearchTest, MatchesEnumerationWithTargetsOverride) {
  RandomDssInstance inst(42, 3);
  DotProblem problem = inst.Problem();
  const PerfTargets targets = MakePerfTargets(
      *inst.workload, inst.box, inst.schema.NumObjects(), /*sla=*/0.4);
  problem.targets_override = &targets;
  DotResult es = ExactSearch(problem, ExactStrategy::kEnumerate);
  DotResult bnb = ExactSearch(problem, ExactStrategy::kBranchAndBound);
  ExpectSameOptimum(bnb, es, "targets_override");
}

TEST(BnbSearchTest, MatchesEnumerationWithFastEvalDisabled) {
  // The escape hatch degrades BnB to full-path leaves with capacity-only
  // pruning; the result must not move.
  RandomDssInstance inst(7, 2);
  DotProblem problem = inst.Problem();
  problem.relative_sla = 0.5;
  DotResult es = ExactSearch(problem, ExactStrategy::kEnumerate);
  problem.options.use_fast_eval = false;
  DotResult bnb = ExactSearch(problem, ExactStrategy::kBranchAndBound);
  ExpectSameOptimum(bnb, es, "use_fast_eval=false");
  ExpectCountersAccountForTree(bnb, inst.box.NumClasses(),
                               inst.schema.NumObjects(),
                               "use_fast_eval=false");
}

TEST(BnbSearchTest, InfeasibleVerdictMatchesEnumeration) {
  RandomDssInstance inst(3, 2);
  BoxConfig tiny = inst.box;
  for (StorageClass& sc : tiny.classes) sc.set_capacity_gb(0.001);
  DotProblem problem = inst.Problem();
  problem.box = &tiny;
  DotResult es = ExactSearch(problem, ExactStrategy::kEnumerate);
  DotResult bnb = ExactSearch(problem, ExactStrategy::kBranchAndBound);
  EXPECT_EQ(es.status.code(), StatusCode::kInfeasible);
  EXPECT_EQ(bnb.status.code(), StatusCode::kInfeasible);
  ExpectCountersAccountForTree(bnb, tiny.NumClasses(),
                               inst.schema.NumObjects(), "infeasible");
}

/// OLTP: TPC-C subsets of growing size on Box 2, with and without H-SSD
/// capacity caps (the Figure 9 shape), against the throughput SLA.
class BnbTpccTest : public ::testing::Test {
 protected:
  DotResult RunBoth(const std::vector<std::string>& objects, double cap_gb,
                    double sla, const std::string& what) {
    Schema full = MakeTpccSchema(30);
    Schema schema = full.Subset(objects);
    BoxConfig box = MakeBox2();
    if (cap_gb > 0) box.classes[2].set_capacity_gb(cap_gb);
    auto workload = MakeTpccWorkload(&schema, &box, TpccConfig{});
    DotProblem problem;
    problem.schema = &schema;
    problem.box = &box;
    problem.workload = workload.get();
    problem.relative_sla = sla;
    DotResult es = ExactSearch(problem, ExactStrategy::kEnumerate);
    DotResult bnb = ExactSearch(problem, ExactStrategy::kBranchAndBound);
    ExpectSameOptimum(bnb, es, what);
    ExpectCountersAccountForTree(bnb, box.NumClasses(), schema.NumObjects(),
                                 what);
    return bnb;
  }
};

TEST_F(BnbTpccTest, MatchesEnumerationOnTpccSubsets) {
  const std::vector<std::string> small = {"stock", "pk_stock", "order_line",
                                          "pk_order_line"};
  const std::vector<std::string> medium = {
      "stock",    "pk_stock",    "order_line", "pk_order_line", "customer",
      "pk_customer", "i_customer", "district",   "pk_district"};
  RunBoth(small, -1, 0.25, "tpcc small uncapped");
  RunBoth(small, 3.0, 0.125, "tpcc small capped");
  RunBoth(medium, -1, 0.25, "tpcc medium uncapped");
  RunBoth(medium, 5.0, 0.1, "tpcc medium capped");
}

TEST_F(BnbTpccTest, PruningCutsMostOfTheTree) {
  const std::vector<std::string> medium = {
      "stock",    "pk_stock",    "order_line", "pk_order_line", "customer",
      "pk_customer", "i_customer", "district",   "pk_district"};
  const DotResult bnb = RunBoth(medium, -1, 0.25, "tpcc pruning");
  ASSERT_TRUE(bnb.status.ok());
  const long long total = PowLL(3, 9);
  EXPECT_GT(bnb.layouts_pruned, total * 9 / 10)
      << "expected >90% of the tree pruned, evaluated "
      << bnb.layouts_evaluated;
}

TEST(BnbSearchTest, DeterministicAcrossThreadCountsIncludingCounters) {
  RandomDssInstance inst(11, 3);
  DotProblem problem = inst.Problem();
  problem.relative_sla = 0.5;
  problem.options.num_threads = 1;
  const DotResult baseline =
      ExactSearch(problem, ExactStrategy::kBranchAndBound);
  const std::vector<int> threads = {
      4, std::max(1, static_cast<int>(std::thread::hardware_concurrency()))};
  for (int t : threads) {
    DotProblem p = inst.Problem();
    p.relative_sla = 0.5;
    p.options.num_threads = t;
    const DotResult r = ExactSearch(p, ExactStrategy::kBranchAndBound);
    const std::string what = "num_threads=" + std::to_string(t);
    ExpectSameOptimum(r, baseline, what);
    ExpectSameCounters(r, baseline, what);
  }
}

TEST(BnbSearchTest, DotWarmStartSeedDoesNotChangeTheOptimum) {
  // With profiles available BnB seeds its incumbent from the DOT
  // heuristic; the answer must still be the enumerated optimum.
  Schema schema = MakeTpchEsSubsetSchema(20.0);
  BoxConfig box = MakeBox1();
  DssWorkloadModel workload("TPC-H-ES", &schema, &box,
                            MakeTpchSubsetTemplates(), RepeatSequence(11, 3),
                            PlannerConfig{});
  Profiler profiler(&schema, &box);
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      workload,
      [&](const std::vector<int>& p) { return workload.Estimate(p); });
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = &workload;
  problem.relative_sla = 0.5;
  problem.profiles = &profiles;
  DotResult es = ExactSearch(problem, ExactStrategy::kEnumerate);
  DotResult bnb = ExactSearch(problem, ExactStrategy::kBranchAndBound);
  ExpectSameOptimum(bnb, es, "tpch es-subset with DOT warm start");
  ExpectCountersAccountForTree(bnb, box.NumClasses(), schema.NumObjects(),
                               "tpch es-subset with DOT warm start");
  // The bound should do real work here, not degenerate to enumeration.
  EXPECT_LT(bnb.layouts_evaluated, es.layouts_evaluated / 2);
}

}  // namespace
}  // namespace dot
